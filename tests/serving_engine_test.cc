// ServingEngine: the admission-controlled micro-batching front door.
// Contracts locked down here:
//  1. Parity — results served through the engine (async Submit + pump, and
//     blocking QueryAll) are bit-identical to a direct QueryBatch for all
//     five suite walkers (HT, AT, AC1, AC2, DPPR) at 1 and 8 batch
//     threads, with and without a shared SubgraphCache.
//  2. Single flight — N identical concurrent cold queries perform exactly
//     one subgraph extraction.
//  3. Admission control — queue-full and over-deadline requests fail fast
//     with typed Statuses (ResourceExhausted / DeadlineExceeded); the
//     micro-batch flush policy (full batch now, partial batch after the
//     flush interval) is exercised deterministically on a FakeClock.
//  4. Lifecycle — destruction with requests still queued resolves every
//     future (typed failure), never hangs, and is clean under ASan.
#include "serving/serving_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/pagerank.h"
#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "graph/subgraph_cache.h"
#include "serving/model_registry.h"
#include "test_util.h"

namespace longtail {
namespace {

class ServingEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 90;
    spec.num_items = 70;
    spec.mean_user_degree = 9;
    spec.min_user_degree = 3;
    spec.num_genres = 5;
    spec.seed = 50121;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// The five walk/graph algorithms named by the parity requirement.
  static std::vector<std::unique_ptr<Recommender>> BuildSuite() {
    std::vector<std::unique_ptr<Recommender>> suite;
    suite.push_back(std::make_unique<HittingTimeRecommender>());
    suite.push_back(std::make_unique<AbsorbingTimeRecommender>());
    AbsorbingCostOptions ac;
    ac.lda.num_topics = 4;
    ac.lda.iterations = 15;
    suite.push_back(std::make_unique<AbsorbingCostRecommender>(
        EntropySource::kItemBased, ac));
    suite.push_back(std::make_unique<AbsorbingCostRecommender>(
        EntropySource::kTopicBased, ac));
    suite.push_back(
        std::make_unique<PageRankRecommender>(/*discounted=*/true));
    for (auto& rec : suite) {
      EXPECT_TRUE(rec->Fit(*data_).ok()) << rec->name();
    }
    return suite;
  }

  /// One fitted AT walker (the cheapest fit) for single-model tests.
  static std::unique_ptr<Recommender> FittedAt() {
    auto at = std::make_unique<AbsorbingTimeRecommender>();
    EXPECT_TRUE(at->Fit(*data_).ok());
    return at;
  }

  static std::vector<ServeRequest> TestRequests(
      const std::vector<ItemId>& candidates) {
    std::vector<ServeRequest> requests;
    for (UserId u = 0; u < std::min<UserId>(30, data_->num_users()); ++u) {
      ServeRequest r;
      r.user = u;
      r.top_k = 10;
      r.score_items = candidates;
      requests.push_back(r);
    }
    return requests;
  }

  static std::vector<UserQuery> AsQueries(
      const std::vector<ServeRequest>& requests) {
    std::vector<UserQuery> queries;
    queries.reserve(requests.size());
    for (const ServeRequest& r : requests) {
      queries.push_back({r.user, r.top_k, r.score_items});
    }
    return queries;
  }

  static Dataset* data_;
};

Dataset* ServingEngineTest::data_ = nullptr;

void ExpectIdenticalResult(const UserQueryResult& expected,
                           const UserQueryResult& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.status.ok(), actual.status.ok())
      << label << ": " << actual.status.ToString();
  ASSERT_EQ(expected.top_k.size(), actual.top_k.size()) << label;
  for (size_t k = 0; k < expected.top_k.size(); ++k) {
    EXPECT_EQ(expected.top_k[k].item, actual.top_k[k].item)
        << label << " pos " << k;
    // Bit-identical, not approximately equal: the engine must replay the
    // exact same walk as the direct batch.
    EXPECT_EQ(expected.top_k[k].score, actual.top_k[k].score)
        << label << " pos " << k;
  }
  EXPECT_EQ(expected.scores, actual.scores) << label;
}

// Parity for all five walkers at 1 and 8 batch threads, served through
// async Submit + manual pump on a FakeClock, with a shared SubgraphCache.
// max_batch_size 7 on 30 requests forces full *and* partial batches.
TEST_F(ServingEngineTest, EngineResultsBitIdenticalToDirectQueryBatch) {
  const std::vector<ItemId> candidates = {0, 3, 7, 11, 19, 42};
  const std::vector<ServeRequest> requests = TestRequests(candidates);
  const std::vector<UserQuery> queries = AsQueries(requests);
  for (const auto& rec : BuildSuite()) {
    BatchOptions direct;
    direct.num_threads = 1;
    const std::vector<UserQueryResult> expected =
        rec->QueryBatch(queries, direct);
    for (size_t threads : {1u, 8u}) {
      SubgraphCache cache;
      FakeClock clock;
      ServingEngineOptions options;
      options.max_batch_size = 7;
      options.flush_interval_ticks = 1;
      options.batch_threads = threads;
      options.subgraph_cache = &cache;
      options.clock = &clock;
      options.start_dispatcher = false;
      ServingEngine engine(options);
      ASSERT_TRUE(engine.AddModel(rec.get()).ok());
      std::vector<std::future<UserQueryResult>> futures;
      for (const ServeRequest& r : requests) {
        futures.push_back(engine.Submit(rec->name(), r));
      }
      clock.Advance(1);
      engine.PumpUntilIdle();
      const std::string label =
          rec->name() + " @" + std::to_string(threads) + "t";
      for (size_t i = 0; i < futures.size(); ++i) {
        ExpectIdenticalResult(expected[i], futures[i].get(),
                              label + " query " + std::to_string(i));
      }
      // Second pass through the blocking bulk API, now on a warm cache.
      const std::vector<UserQueryResult> warm =
          engine.QueryAll(rec->name(), requests);
      for (size_t i = 0; i < warm.size(); ++i) {
        ExpectIdenticalResult(expected[i], warm[i],
                              label + " warm query " + std::to_string(i));
      }
    }
  }
}

// N identical cold queries through the engine perform exactly one subgraph
// extraction. The fused batch engine groups identical seed sets before the
// cache is even consulted, so the cache sees one resolution per dispatched
// slice rather than one per query: exactly one miss fills, every further
// slice resolves as a hit or coalesced wait — never a second extraction.
TEST_F(ServingEngineTest, IdenticalConcurrentColdQueriesExtractOnce) {
  auto at = FittedAt();
  SubgraphCache cache;
  ServingEngineOptions options;
  options.max_batch_size = 32;
  options.batch_threads = 8;
  options.subgraph_cache = &cache;
  options.start_dispatcher = false;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(at.get()).ok());
  constexpr size_t kDupes = 32;
  ServeRequest dupe;
  dupe.user = 1;
  dupe.top_k = 10;
  std::vector<std::future<UserQueryResult>> futures;
  for (size_t i = 0; i < kDupes; ++i) {
    futures.push_back(engine.Submit(at->name(), dupe));
  }
  engine.PumpUntilIdle();
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  const SubgraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u) << "duplicate extraction ran";
  EXPECT_EQ(stats.inserts, 1u);
  // 32 duplicates collapse into one seed-set group sliced at the fused
  // dispatch width, so lookups = slices, not queries.
  EXPECT_GE(stats.hits + stats.coalesced_waits, 1u);
  EXPECT_LE(stats.hits + stats.coalesced_waits, kDupes - 1);
}

// Deadline semantics: dead-on-arrival requests are rejected at Submit;
// requests whose deadline passes while queued fail at dispatch — both with
// DeadlineExceeded, neither reaching the model.
TEST_F(ServingEngineTest, DeadlinesFailFastWithTypedStatus) {
  auto at = FittedAt();
  FakeClock clock;
  ServingEngineOptions options;
  options.max_batch_size = 64;  // nothing flushes on size
  options.flush_interval_ticks = 5;
  options.clock = &clock;
  options.start_dispatcher = false;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(at.get()).ok());

  // Dead on arrival.
  clock.Set(10);
  ServeRequest expired;
  expired.user = 1;
  expired.top_k = 5;
  expired.deadline_tick = 5;
  auto f1 = engine.Submit(at->name(), expired);
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f1.get().status.code(), StatusCode::kDeadlineExceeded);

  // Expires while queued: admitted at tick 10 (deadline 12), dispatched at
  // tick 20 — past deadline, fails without running.
  ServeRequest queued;
  queued.user = 2;
  queued.top_k = 5;
  queued.deadline_tick = 12;
  auto f2 = engine.Submit(at->name(), queued);
  EXPECT_EQ(engine.Pump(), 0u);  // tick 10: younger than the flush interval
  clock.Set(20);
  EXPECT_EQ(engine.Pump(), 1u);
  EXPECT_EQ(f2.get().status.code(), StatusCode::kDeadlineExceeded);

  // A request with headroom still serves.
  ServeRequest healthy;
  healthy.user = 3;
  healthy.top_k = 5;
  healthy.deadline_tick = 100;
  auto f3 = engine.Submit(at->name(), healthy);
  clock.Advance(5);
  engine.PumpUntilIdle();
  EXPECT_TRUE(f3.get().status.ok());

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.rejected_expired, 1u);
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// Admission control: the queue never grows past max_queue_depth; overflow
// fails fast with ResourceExhausted instead of queueing unboundedly.
TEST_F(ServingEngineTest, QueueFullRejectsFastWithResourceExhausted) {
  auto at = FittedAt();
  ServingEngineOptions options;
  options.max_queue_depth = 2;
  options.max_batch_size = 64;
  options.flush_interval_ticks = 1000;  // nothing flushes by age here
  options.start_dispatcher = false;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(at.get()).ok());
  ServeRequest r;
  r.user = 1;
  r.top_k = 5;
  auto f1 = engine.Submit(at->name(), r);
  auto f2 = engine.Submit(at->name(), r);
  auto f3 = engine.Submit(at->name(), r);  // over depth: rejected now
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.Stats().rejected_queue_full, 1u);
  engine.PumpUntilIdle();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

// Micro-batch flush policy on a FakeClock: a lone request waits out the
// flush interval; a full batch dispatches at once; the batch-size
// histogram and queue-latency stats record it all.
TEST_F(ServingEngineTest, FlushPolicyIsDeterministicOnFakeClock) {
  auto at = FittedAt();
  FakeClock clock;
  ServingEngineOptions options;
  options.max_batch_size = 2;
  options.flush_interval_ticks = 10;
  options.clock = &clock;
  options.start_dispatcher = false;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(at.get()).ok());
  ServeRequest r;
  r.user = 1;
  r.top_k = 5;

  // One request: not full, not aged — the batch keeps filling.
  auto f1 = engine.Submit(at->name(), r);
  EXPECT_EQ(engine.Pump(), 0u);
  clock.Advance(9);
  EXPECT_EQ(engine.Pump(), 0u);  // tick 9 < flush interval 10
  clock.Advance(1);
  EXPECT_EQ(engine.Pump(), 1u);  // aged out: partial batch of 1
  EXPECT_TRUE(f1.get().status.ok());

  // Two requests: reaches max_batch_size, dispatches with no wait.
  auto f2 = engine.Submit(at->name(), r);
  auto f3 = engine.Submit(at->name(), r);
  EXPECT_EQ(engine.Pump(), 2u);
  EXPECT_TRUE(f2.get().status.ok());
  EXPECT_TRUE(f3.get().status.ok());

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.batches_executed, 2u);
  ASSERT_FALSE(stats.batch_size_pow2.empty());
  EXPECT_EQ(stats.batch_size_pow2[0], 1u);  // the size-1 flush
  EXPECT_EQ(stats.batch_size_pow2[1], 1u);  // the size-2 flush
  EXPECT_EQ(stats.dispatched, 3u);
  EXPECT_EQ(stats.queue_ticks_max, 10u);  // f1 waited the whole interval
}

TEST_F(ServingEngineTest, RegistrationGuards) {
  auto at = FittedAt();
  ServingEngineOptions options;
  options.start_dispatcher = false;
  ServingEngine engine(options);
  // Unknown model: typed NotFound, immediately ready.
  auto f = engine.Submit("nope", ServeRequest{.user = 1, .top_k = 3});
  EXPECT_EQ(f.get().status.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Stats().rejected_unknown_model, 1u);
  // Unfitted models cannot register.
  AbsorbingTimeRecommender unfitted;
  EXPECT_EQ(engine.AddModel(&unfitted).code(),
            StatusCode::kFailedPrecondition);
  // Duplicates cannot register.
  EXPECT_TRUE(engine.AddModel(at.get()).ok());
  EXPECT_EQ(engine.AddModel(at.get()).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.HasModel(at->name()));
}

// Background dispatcher end to end: blocking Query against a running
// dispatcher returns the same result as a direct single-query batch.
TEST_F(ServingEngineTest, DispatcherServesBlockingQueries) {
  auto at = FittedAt();
  SubgraphCache cache;
  ServingEngineOptions options;
  options.max_batch_size = 4;
  options.flush_interval_ticks = 1;
  options.subgraph_cache = &cache;
  ServingEngine engine(options);  // dispatcher on, steady clock
  ASSERT_TRUE(engine.AddModel(at.get()).ok());
  const std::vector<ItemId> candidates = {1, 2, 5};
  UserQuery q;
  q.user = 4;
  q.top_k = 8;
  q.score_items = candidates;
  const UserQueryResult expected =
      at->QueryBatch(std::span<const UserQuery>(&q, 1))[0];
  ServeRequest r;
  r.user = 4;
  r.top_k = 8;
  r.score_items = candidates;
  const UserQueryResult got = engine.Query(at->name(), r);
  ExpectIdenticalResult(expected, got, "blocking query via dispatcher");
  EXPECT_GE(engine.Stats().completed, 1u);
}

// Checkpoint wiring: a directory of checkpoints cold-starts an engine
// (ModelRegistry does the reconstruction) and serves bit-identically to
// the fitted originals.
TEST_F(ServingEngineTest, CheckpointDirectoryColdStartsEngine) {
  const std::string dir =
      ::testing::TempDir() + "/serving_engine_ckpt_test";
  std::filesystem::create_directories(dir);
  auto at = FittedAt();
  auto ht = std::make_unique<HittingTimeRecommender>();
  ASSERT_TRUE(ht->Fit(*data_).ok());
  ASSERT_TRUE(SaveModelCheckpoint(*at, dir + "/AT.ckpt").ok());
  ASSERT_TRUE(SaveModelCheckpoint(*ht, dir + "/HT.ckpt").ok());

  ServingEngineOptions options;
  options.start_dispatcher = false;
  ServingEngine engine(options);
  auto loaded = LoadCheckpointDirIntoEngine(dir, *data_, &engine);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, (std::vector<std::string>{"AT", "HT"}));

  UserQuery q;
  q.user = 2;
  q.top_k = 10;
  ServeRequest r;
  r.user = 2;
  r.top_k = 10;
  for (const Recommender* original :
       {static_cast<const Recommender*>(at.get()),
        static_cast<const Recommender*>(ht.get())}) {
    const UserQueryResult expected =
        original->QueryBatch(std::span<const UserQuery>(&q, 1))[0];
    const UserQueryResult got = engine.Query(original->name(), r);
    ExpectIdenticalResult(expected, got,
                          "checkpoint-served " + original->name());
  }
  std::filesystem::remove_all(dir);
}

// Destruction with requests still in flight: every future resolves (served
// or typed failure), nothing hangs, nothing leaks (ASan job). Submitters
// race the destructor's shutdown path via the closed-queue rejection.
TEST_F(ServingEngineTest, DestructionWithInflightRequestsHammer) {
  auto at = FittedAt();
  auto ht = std::make_unique<HittingTimeRecommender>();
  ASSERT_TRUE(ht->Fit(*data_).ok());
  SubgraphCache cache;
  constexpr int kRounds = 5;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::vector<std::future<UserQueryResult>>> futures(kThreads);
    {
      ServingEngineOptions options;
      options.max_batch_size = 4;
      options.max_queue_depth = 64;
      options.flush_interval_ticks = 1;
      options.subgraph_cache = &cache;
      ServingEngine engine(options);  // dispatcher on
      ASSERT_TRUE(engine.AddModel(at.get()).ok());
      ASSERT_TRUE(engine.AddModel(ht.get()).ok());
      std::vector<std::thread> submitters;
      for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
          for (int i = 0; i < kPerThread; ++i) {
            ServeRequest r;
            r.user = (t * kPerThread + i) %
                     ServingEngineTest::data_->num_users();
            r.top_k = 5;
            // A slice of the traffic carries a deadline the dispatcher may
            // or may not beat — both outcomes are legal.
            if (i % 5 == 0) r.deadline_tick = engine.NowTicks() + 1;
            const std::string& model = (i % 2 == 0) ? "AT" : "HT";
            futures[t].push_back(engine.Submit(model, r));
          }
        });
      }
      for (auto& s : submitters) s.join();
      // Engine destructs here with most requests still queued.
    }
    size_t ok = 0, failed = 0;
    for (auto& per_thread : futures) {
      for (auto& f : per_thread) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "a future was abandoned at engine destruction";
        const UserQueryResult r = f.get();
        if (r.status.ok()) {
          ++ok;
        } else {
          ++failed;
          const StatusCode code = r.status.code();
          EXPECT_TRUE(code == StatusCode::kFailedPrecondition ||
                      code == StatusCode::kDeadlineExceeded ||
                      code == StatusCode::kResourceExhausted)
              << r.status.ToString();
        }
      }
    }
    EXPECT_EQ(ok + failed,
              static_cast<size_t>(kThreads * kPerThread));
  }
}

}  // namespace
}  // namespace longtail
