#include "data/ontology.h"

#include <gtest/gtest.h>

namespace longtail {
namespace {

CategoryOntology MakeSmall() {
  auto ont = CategoryOntology::BuildBalanced({"Computer", "Fiction"}, 2, 3);
  EXPECT_TRUE(ont.ok());
  return std::move(ont).value();
}

TEST(OntologyTest, LeafCountMatchesShape) {
  CategoryOntology ont = MakeSmall();
  EXPECT_EQ(ont.num_leaves(), 2 * 2 * 3);
}

TEST(OntologyTest, SelfSimilarityIsOne) {
  CategoryOntology ont = MakeSmall();
  for (int32_t l = 0; l < ont.num_leaves(); ++l) {
    EXPECT_DOUBLE_EQ(ont.PathSimilarity(l, l), 1.0);
  }
}

TEST(OntologyTest, SiblingsShareTwoOfThreeLevels) {
  // Leaves 0 and 1 are under the same Sub0 of Computer: prefix 2 of 3.
  CategoryOntology ont = MakeSmall();
  EXPECT_NEAR(ont.PathSimilarity(0, 1), 2.0 / 3.0, 1e-12);
}

TEST(OntologyTest, CousinsShareOneLevel) {
  // Leaf 0 (Computer/Sub0) vs leaf 3 (Computer/Sub1): share only "Computer".
  CategoryOntology ont = MakeSmall();
  EXPECT_NEAR(ont.PathSimilarity(0, 3), 1.0 / 3.0, 1e-12);
}

TEST(OntologyTest, DifferentTopCategoriesShareNothing) {
  // Leaf 0 (Computer) vs leaf 6 (Fiction).
  CategoryOntology ont = MakeSmall();
  EXPECT_DOUBLE_EQ(ont.PathSimilarity(0, 6), 0.0);
}

TEST(OntologyTest, SimilarityIsSymmetric) {
  CategoryOntology ont = MakeSmall();
  for (int32_t a = 0; a < ont.num_leaves(); ++a) {
    for (int32_t b = 0; b < ont.num_leaves(); ++b) {
      EXPECT_DOUBLE_EQ(ont.PathSimilarity(a, b), ont.PathSimilarity(b, a));
    }
  }
}

TEST(OntologyTest, PaperExampleRatio) {
  // The paper's example: two books sharing "Book: Computer & Internet:
  // Database" out of 4 levels score 2/4. Emulate with a depth-4 tree by
  // treating our 3 levels: a sibling-sub pair scores 1/3 — structural
  // analogue checked above; here verify the formula |prefix|/max(len)
  // via LeafPath lengths.
  CategoryOntology ont = MakeSmall();
  const auto& path = ont.LeafPath(0);
  EXPECT_EQ(path.size(), 3u);
}

TEST(OntologyTest, LeavesUnderTopPartitionTheLeaves) {
  CategoryOntology ont = MakeSmall();
  const auto computer = ont.LeavesUnderTop(0);
  const auto fiction = ont.LeavesUnderTop(1);
  EXPECT_EQ(computer.size(), 6u);
  EXPECT_EQ(fiction.size(), 6u);
  for (int32_t l : computer) {
    EXPECT_EQ(ont.LeafPath(l)[0], "Computer");
  }
  for (int32_t l : fiction) {
    EXPECT_EQ(ont.LeafPath(l)[0], "Fiction");
  }
}

TEST(OntologyTest, LeafPathStringFormat) {
  CategoryOntology ont = MakeSmall();
  const std::string s = ont.LeafPathString(0);
  EXPECT_EQ(s, "Computer: Computer/Sub0: Computer/Sub0/Leaf0");
}

TEST(OntologyTest, RejectsBadShapes) {
  EXPECT_FALSE(CategoryOntology::BuildBalanced({}, 2, 2).ok());
  EXPECT_FALSE(CategoryOntology::BuildBalanced({"A"}, 0, 2).ok());
  EXPECT_FALSE(CategoryOntology::BuildBalanced({"A"}, 2, 0).ok());
}

}  // namespace
}  // namespace longtail
