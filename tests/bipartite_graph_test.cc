#include "graph/bipartite_graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

TEST(BipartiteGraphTest, NodeIdConvention) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  EXPECT_EQ(g.num_users(), 5);
  EXPECT_EQ(g.num_items(), 6);
  EXPECT_EQ(g.num_nodes(), 11);
  EXPECT_EQ(g.UserNode(2), 2);
  EXPECT_EQ(g.ItemNode(0), 5);
  EXPECT_TRUE(g.IsUserNode(4));
  EXPECT_TRUE(g.IsItemNode(5));
  EXPECT_EQ(g.ItemOf(g.ItemNode(3)), 3);
  EXPECT_EQ(g.UserOf(g.UserNode(3)), 3);
}

TEST(BipartiteGraphTest, EdgeCountMatchesRatings) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  EXPECT_EQ(g.num_edges(), 16);
}

TEST(BipartiteGraphTest, WeightedDegreesMatchRatingSums) {
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  // U1 rated 5+3+3+5 = 16.
  EXPECT_DOUBLE_EQ(g.WeightedDegree(g.UserNode(testing::kU1)), 16.0);
  // M3 rated 5+4+5+5 = 19.
  EXPECT_DOUBLE_EQ(g.WeightedDegree(g.ItemNode(testing::kM3)), 19.0);
  // Total weight = 2 * sum of all ratings.
  double rating_sum = 0.0;
  for (const auto& r : d.ToRatingList()) rating_sum += r.value;
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 2.0 * rating_sum);
}

TEST(BipartiteGraphTest, AdjacencyIsSymmetric) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.Neighbors(v);
    const auto wts = g.Weights(v);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      // Find v in nbrs[k]'s adjacency with the same weight.
      const auto back_nbrs = g.Neighbors(nbrs[k]);
      const auto back_wts = g.Weights(nbrs[k]);
      bool found = false;
      for (size_t j = 0; j < back_nbrs.size(); ++j) {
        if (back_nbrs[j] == v && back_wts[j] == wts[k]) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "edge " << v << "→" << nbrs[k] << " asymmetric";
    }
  }
}

TEST(BipartiteGraphTest, EdgesConnectUsersToItemsOnly) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId nbr : g.Neighbors(v)) {
      EXPECT_NE(g.IsUserNode(v), g.IsUserNode(nbr));
    }
  }
}

TEST(BipartiteGraphTest, UnweightedModeUsesUnitWeights) {
  BipartiteGraph g =
      BipartiteGraph::FromDataset(MakeFigure2Dataset(), /*weighted=*/false);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(g.UserNode(testing::kU1)), 4.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(g.ItemNode(testing::kM3)), 4.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (double w : g.Weights(v)) EXPECT_DOUBLE_EQ(w, 1.0);
  }
}

TEST(BipartiteGraphTest, EdgeWeightsAreRatings) {
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  const NodeId u5 = g.UserNode(testing::kU5);
  const auto nbrs = g.Neighbors(u5);
  const auto wts = g.Weights(u5);
  ASSERT_EQ(nbrs.size(), 2u);
  for (size_t k = 0; k < nbrs.size(); ++k) {
    const ItemId item = g.ItemOf(nbrs[k]);
    EXPECT_DOUBLE_EQ(wts[k], d.GetRating(testing::kU5, item));
  }
}

TEST(BipartiteGraphTest, FromAdjacencyRoundTrip) {
  // Manual 1-user/2-item triangle-free adjacency.
  std::vector<std::vector<std::pair<NodeId, double>>> adj(3);
  adj[0] = {{1, 2.0}, {2, 3.0}};
  adj[1] = {{0, 2.0}};
  adj[2] = {{0, 3.0}};
  BipartiteGraph g = BipartiteGraph::FromAdjacency(1, 2, adj);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 2.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 10.0);
}

TEST(BipartiteGraphTest, IsolatedNodesHaveZeroDegree) {
  auto d = Dataset::Create(2, 2, {{0, 0, 5.0f}});
  ASSERT_TRUE(d.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  EXPECT_EQ(g.Degree(g.UserNode(1)), 0);
  EXPECT_EQ(g.Degree(g.ItemNode(1)), 0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(g.UserNode(1)), 0.0);
}

}  // namespace
}  // namespace longtail
