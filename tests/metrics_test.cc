#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/popularity.h"
#include "data/generator.h"
#include "test_util.h"

namespace longtail {
namespace {

// A stub recommender with a fixed global item ranking (higher id = better),
// so protocol outcomes are fully predictable.
class FixedRankingRecommender : public Recommender {
 public:
  std::string name() const override { return "Fixed"; }
  Status Fit(const Dataset& data) override {
    data_ = &data;
    return Status::OK();
  }
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override {
    LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
    std::vector<ScoredItem> all;
    for (ItemId i = 0; i < data_->num_items(); ++i) {
      if (!data_->HasRating(user, i)) {
        all.push_back({i, static_cast<double>(i)});
      }
    }
    return TopKScoredItems(std::move(all), k);
  }
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override {
    LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
    std::vector<double> scores(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      scores[k] = static_cast<double>(items[k]);
    }
    return scores;
  }

 private:
  const Dataset* data_ = nullptr;
};

TEST(RecallProtocolTest, PerfectRecommenderHasRecallOne) {
  // Give the held-out item the highest possible id so FixedRanking always
  // ranks it first.
  auto d = Dataset::Create(
      4, 10, {{0, 9, 5.0f}, {0, 1, 3.0f}, {1, 2, 4.0f}, {2, 3, 3.0f},
              {3, 4, 2.0f}, {1, 9, 5.0f}});
  ASSERT_TRUE(d.ok());
  FixedRankingRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  std::vector<TestCase> test = {{0, 9, 5.0f}, {1, 9, 5.0f}};
  RecallProtocolOptions options;
  options.num_decoys = 5;
  options.max_n = 5;
  auto curve = EvaluateRecall(rec, *d, test, options);
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->At(1), 1.0);
  EXPECT_DOUBLE_EQ(curve->At(5), 1.0);
}

TEST(RecallProtocolTest, WorstRecommenderHasRecallZeroAtSmallN) {
  // Held-out item 0 always ranks last under FixedRanking.
  auto d = Dataset::Create(2, 10, {{0, 0, 5.0f}, {1, 5, 3.0f}});
  ASSERT_TRUE(d.ok());
  FixedRankingRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  std::vector<TestCase> test = {{0, 0, 5.0f}};
  RecallProtocolOptions options;
  options.num_decoys = 5;
  options.max_n = 3;
  auto curve = EvaluateRecall(rec, *d, test, options);
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->At(1), 0.0);
  EXPECT_DOUBLE_EQ(curve->At(3), 0.0);
}

TEST(RecallProtocolTest, CurveIsMonotoneNondecreasing) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.05));
  ASSERT_TRUE(data.ok());
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(data->dataset).ok());
  std::vector<TestCase> test;
  for (UserId u = 0; u < 30; ++u) {
    const auto items = data->dataset.UserItems(u);
    test.push_back({u, items[0], 5.0f});
  }
  RecallProtocolOptions options;
  options.num_decoys = 100;
  options.max_n = 20;
  auto curve = EvaluateRecall(rec, data->dataset, test, options);
  ASSERT_TRUE(curve.ok());
  for (int n = 2; n <= 20; ++n) {
    EXPECT_GE(curve->At(n), curve->At(n - 1) - 1e-12);
  }
  EXPECT_GE(curve->At(1), 0.0);
  EXPECT_LE(curve->At(20), 1.0);
}

TEST(RecallProtocolTest, DecoyCountClampedOnTinyCatalog) {
  Dataset d = testing::MakeFigure2Dataset();
  FixedRankingRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  std::vector<TestCase> test = {{testing::kU5, testing::kM4, 5.0f}};
  RecallProtocolOptions options;
  options.num_decoys = 1000;  // catalog has 6 items
  options.max_n = 3;
  auto curve = EvaluateRecall(rec, d, test, options);
  ASSERT_TRUE(curve.ok());
  EXPECT_LE(curve->effective_decoys, 4);
}

TEST(RecallProtocolTest, TiesContributeExpectedValue) {
  // All items score identically → the test item's expected rank among
  // (decoys+1) tied candidates gives recall@1 = 1/(decoys+1).
  class ConstantRecommender : public FixedRankingRecommender {
   public:
    Result<std::vector<double>> ScoreItems(
        UserId, std::span<const ItemId> items) const override {
      return std::vector<double>(items.size(), 7.0);
    }
  };
  auto d = Dataset::Create(1, 30, {{0, 0, 5.0f}});
  ASSERT_TRUE(d.ok());
  ConstantRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  std::vector<TestCase> test = {{0, 0, 5.0f}};
  RecallProtocolOptions options;
  options.num_decoys = 9;
  options.max_n = 10;
  auto curve = EvaluateRecall(rec, *d, test, options);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve->At(1), 1.0 / 10.0, 1e-9);
  EXPECT_NEAR(curve->At(10), 1.0, 1e-9);
}

TEST(RecallProtocolTest, MrrAndNdcgForPerfectRecommender) {
  // Held-out item always first: MRR = 1, nDCG@n = 1 for all n.
  auto d = Dataset::Create(2, 10, {{0, 9, 5.0f}, {1, 9, 5.0f}});
  ASSERT_TRUE(d.ok());
  FixedRankingRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  std::vector<TestCase> test = {{0, 9, 5.0f}, {1, 9, 5.0f}};
  RecallProtocolOptions options;
  options.num_decoys = 5;
  options.max_n = 5;
  auto curve = EvaluateRecall(rec, *d, test, options);
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->mrr, 1.0);
  for (int n = 1; n <= 5; ++n) {
    EXPECT_DOUBLE_EQ(curve->NdcgAt(n), 1.0) << n;
  }
}

TEST(RecallProtocolTest, MrrMatchesKnownRank) {
  // Item 5 held out; the user also rated item 0, so the eligible decoy
  // pool is exactly the 8 items {1,2,3,4,6,7,8,9} and the effective-decoy
  // clamp (catalog − 2 = 8) covers it deterministically. FixedRanking
  // scores by id: items 6,7,8,9 outrank item 5 → rank 4.
  auto d = Dataset::Create(1, 10, {{0, 0, 3.0f}, {0, 5, 5.0f}});
  ASSERT_TRUE(d.ok());
  FixedRankingRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  std::vector<TestCase> test = {{0, 5, 5.0f}};
  RecallProtocolOptions options;
  options.num_decoys = 8;  // every unrated non-test item becomes a decoy
  options.max_n = 10;
  auto curve = EvaluateRecall(rec, *d, test, options);
  ASSERT_TRUE(curve.ok());
  // Items 6, 7, 8, 9 outrank item 5 → rank 4 → RR = 1/5.
  EXPECT_NEAR(curve->mrr, 0.2, 1e-12);
  // nDCG jumps from 0 to 1/log2(6) exactly at n = 5.
  EXPECT_DOUBLE_EQ(curve->NdcgAt(4), 0.0);
  EXPECT_NEAR(curve->NdcgAt(5), 1.0 / std::log2(6.0), 1e-12);
}

TEST(RecallProtocolTest, NdcgMonotoneAndBelowRecall) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.04));
  ASSERT_TRUE(data.ok());
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(data->dataset).ok());
  std::vector<TestCase> test;
  for (UserId u = 0; u < 20; ++u) {
    test.push_back({u, data->dataset.UserItems(u)[0], 5.0f});
  }
  RecallProtocolOptions options;
  options.num_decoys = 80;
  options.max_n = 20;
  auto curve = EvaluateRecall(rec, data->dataset, test, options);
  ASSERT_TRUE(curve.ok());
  for (int n = 1; n <= 20; ++n) {
    if (n > 1) EXPECT_GE(curve->NdcgAt(n), curve->NdcgAt(n - 1) - 1e-12);
    // Each case's gain ≤ its hit indicator, so nDCG@n ≤ recall@n.
    EXPECT_LE(curve->NdcgAt(n), curve->At(n) + 1e-12);
  }
  EXPECT_GE(curve->mrr, 0.0);
  EXPECT_LE(curve->mrr, 1.0);
}

TEST(RecallProtocolTest, ThreadCountDoesNotChangeResults) {
  // Decoys are drawn from a per-case RNG keyed by the case index, so the
  // curve must be bit-identical at any parallelism.
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.04));
  ASSERT_TRUE(data.ok());
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(data->dataset).ok());
  std::vector<TestCase> test;
  for (UserId u = 0; u < 25; ++u) {
    test.push_back({u, data->dataset.UserItems(u)[0], 5.0f});
  }
  RecallProtocolOptions serial;
  serial.num_decoys = 80;
  serial.max_n = 10;
  serial.num_threads = 1;
  RecallProtocolOptions parallel = serial;
  parallel.num_threads = 4;
  auto a = EvaluateRecall(rec, data->dataset, test, serial);
  auto b = EvaluateRecall(rec, data->dataset, test, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int n = 1; n <= 10; ++n) {
    EXPECT_DOUBLE_EQ(a->At(n), b->At(n)) << "N=" << n;
  }
}

TEST(RecallProtocolTest, FailingRecommenderCasesAreSkipped) {
  // A recommender that errors for some users must not sink the protocol;
  // failed cases are excluded from the denominator.
  class FlakyRecommender : public FixedRankingRecommender {
   public:
    Result<std::vector<double>> ScoreItems(
        UserId user, std::span<const ItemId> items) const override {
      if (user % 2 == 0) return Status::Internal("simulated failure");
      return FixedRankingRecommender::ScoreItems(user, items);
    }
  };
  auto d = Dataset::Create(4, 20, {{0, 0, 5.0f}, {1, 1, 5.0f},
                                   {2, 2, 5.0f}, {3, 3, 5.0f}});
  ASSERT_TRUE(d.ok());
  FlakyRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  std::vector<TestCase> test = {
      {0, 0, 5.0f}, {1, 1, 5.0f}, {2, 2, 5.0f}, {3, 3, 5.0f}};
  RecallProtocolOptions options;
  options.num_decoys = 5;
  options.max_n = 5;
  auto curve = EvaluateRecall(rec, *d, test, options);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->num_cases, 2);  // users 1 and 3 only
}

TEST(RecallProtocolTest, EmptyTestSetRejected) {
  Dataset d = testing::MakeFigure2Dataset();
  FixedRankingRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  EXPECT_FALSE(EvaluateRecall(rec, d, {}, {}).ok());
}

TEST(TopNListsTest, ComputesListsForAllUsers) {
  Dataset d = testing::MakeFigure2Dataset();
  FixedRankingRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  TopNListOptions options;
  options.k = 3;
  auto lists = ComputeTopNLists(rec, {0, 1, 2}, options);
  ASSERT_TRUE(lists.ok());
  EXPECT_EQ(lists->lists.size(), 3u);
  for (const auto& list : lists->lists) {
    EXPECT_LE(list.size(), 3u);
    EXPECT_GE(list.size(), 1u);
  }
  EXPECT_GE(lists->seconds_per_user, 0.0);
}

TEST(PopularityAtNTest, MatchesManualAverages) {
  Dataset d = testing::MakeFigure2Dataset();
  TopNLists lists;
  lists.lists = {{{testing::kM1, 0.0}, {testing::kM4, 0.0}},
                 {{testing::kM3, 0.0}, {testing::kM4, 0.0}}};
  const auto pop = PopularityAtN(d, lists, 2);
  ASSERT_EQ(pop.size(), 2u);
  // Position 1: (pop(M1)=3 + pop(M3)=4)/2 = 3.5.
  EXPECT_DOUBLE_EQ(pop[0], 3.5);
  // Position 2: (pop(M4)=1 + pop(M4)=1)/2 = 1.
  EXPECT_DOUBLE_EQ(pop[1], 1.0);
}

TEST(PopularityAtNTest, ShortListsHandled) {
  Dataset d = testing::MakeFigure2Dataset();
  TopNLists lists;
  lists.lists = {{{testing::kM1, 0.0}}, {}};
  const auto pop = PopularityAtN(d, lists, 3);
  EXPECT_DOUBLE_EQ(pop[0], 3.0);
  EXPECT_DOUBLE_EQ(pop[1], 0.0);
  EXPECT_DOUBLE_EQ(pop[2], 0.0);
}

TEST(DiversityTest, AllDistinctListsScoreHigh) {
  Dataset d = testing::MakeFigure2Dataset();
  TopNLists lists;
  lists.lists = {{{0, 0.0}, {1, 0.0}}, {{2, 0.0}, {3, 0.0}}};
  // 4 unique / min(2*2, 6) = 1.0.
  EXPECT_DOUBLE_EQ(DiversityOfLists(d, lists, 2), 1.0);
}

TEST(DiversityTest, IdenticalListsScoreLow) {
  Dataset d = testing::MakeFigure2Dataset();
  TopNLists lists;
  lists.lists = {{{0, 0.0}, {1, 0.0}}, {{0, 0.0}, {1, 0.0}}};
  EXPECT_DOUBLE_EQ(DiversityOfLists(d, lists, 2), 0.5);
}

TEST(DiversityTest, DenominatorCappedByCatalog) {
  // 3 users × k=10 = 30 > 6 items: denominator is the catalog size
  // (the paper's MovieLens case in Table 2).
  Dataset d = testing::MakeFigure2Dataset();
  TopNLists lists;
  lists.lists = {{{0, 0.0}, {1, 0.0}, {2, 0.0}},
                 {{3, 0.0}, {4, 0.0}},
                 {{5, 0.0}}};
  EXPECT_DOUBLE_EQ(DiversityOfLists(d, lists, 10), 1.0);
}

TEST(SimilarityTest, OntologyPathSimilarityDrivesScore) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.02));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  // For a user, an item in the same leaf as a rated item scores 1.
  const UserId u = 0;
  const ItemId rated = d.UserItems(u)[0];
  ItemId same_leaf = -1;
  for (ItemId i = 0; i < d.num_items(); ++i) {
    if (i != rated && d.item_categories[i] == d.item_categories[rated]) {
      same_leaf = i;
      break;
    }
  }
  if (same_leaf >= 0) {
    EXPECT_DOUBLE_EQ(UserItemSimilarity(d, data->ontology, u, same_leaf),
                     1.0);
  }
  // Every similarity is within [0, 1].
  for (ItemId i = 0; i < std::min<ItemId>(d.num_items(), 50); ++i) {
    const double s = UserItemSimilarity(d, data->ontology, u, i);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SimilarityOfListsTest, AveragesOverUsersAndItems) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.02));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  std::vector<UserId> users = {0, 1};
  TopNLists lists;
  lists.lists = {{{0, 0.0}, {1, 0.0}}, {{2, 0.0}}};
  const double sim = SimilarityOfLists(d, data->ontology, users, lists);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
}

}  // namespace
}  // namespace longtail
