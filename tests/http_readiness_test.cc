// Readiness gating and graceful shutdown of the HTTP front.
//
// Contracts locked down here:
//  1. /readyz answers the 503 FailedPrecondition envelope until the
//     checkpoint fleet is loaded and MarkReady() runs, then 200 with the
//     registered model names; /healthz answers 200 throughout (liveness
//     and readiness are different questions).
//  2. Engine endpoints refuse work with the 503 envelope while not ready
//     — a request must never reach an engine whose models are missing.
//  3. Graceful shutdown with clients mid-flight completes bounded (never
//     hangs), answers in-flight requests, and every request issued around
//     the shutdown either succeeds or fails with a typed envelope /
//     clean connection close — hammered for 5 rounds.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/absorbing_time.h"
#include "data/generator.h"
#include "http/http_client.h"
#include "http/http_json.h"
#include "http/http_server.h"
#include "http/serving_http.h"
#include "serving/model_registry.h"
#include "serving/serving_engine.h"

namespace longtail {
namespace {

namespace fs = std::filesystem;

class HttpReadinessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 50;
    spec.num_items = 40;
    spec.mean_user_degree = 7;
    spec.min_user_degree = 3;
    spec.num_genres = 3;
    spec.seed = 777001;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);

    ckpt_dir_ =
        new fs::path(fs::temp_directory_path() / "longtail_http_readiness");
    fs::remove_all(*ckpt_dir_);
    fs::create_directories(*ckpt_dir_);
    AbsorbingTimeRecommender at;
    ASSERT_TRUE(at.Fit(*data_).ok());
    ASSERT_TRUE(
        SaveModelCheckpoint(at, (*ckpt_dir_ / "at.ckpt").string()).ok());
  }
  static void TearDownTestSuite() {
    fs::remove_all(*ckpt_dir_);
    delete ckpt_dir_;
    ckpt_dir_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static Dataset* data_;
  static fs::path* ckpt_dir_;
};

Dataset* HttpReadinessTest::data_ = nullptr;
fs::path* HttpReadinessTest::ckpt_dir_ = nullptr;

int StatusOf(HttpClient& client, const std::string& method,
             const std::string& target, const std::string& body = "") {
  auto response = client.Request(method, target, body);
  EXPECT_TRUE(response.ok()) << method << " " << target << ": "
                             << response.status().ToString();
  return response.ok() ? response.value().status : -1;
}

TEST_F(HttpReadinessTest, ReadyzGatesOnCheckpointLoadHealthzDoesNot) {
  // Server comes up BEFORE any model is loaded — the production boot
  // order: bind the port first so the platform's probes can distinguish
  // "starting" (healthz 200 / readyz 503) from "dead" (no listener).
  ServingEngine engine;
  ServingHttpFront front(&engine);  // ready_at_start defaults to false
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Not ready: liveness green, readiness red, work refused with 503.
  EXPECT_EQ(StatusOf(client, "GET", "/healthz"), 200);
  {
    auto readyz = client.Request("GET", "/readyz");
    ASSERT_TRUE(readyz.ok());
    EXPECT_EQ(readyz.value().status, 503);
    auto parsed = ParseJson(readyz.value().body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(
        parsed.value().Find("error")->Find("code")->string_value(),
        "FailedPrecondition");
  }
  EXPECT_EQ(StatusOf(client, "POST", "/v1/recommend",
                     "{\"model\":\"AT\",\"user\":1,\"top_k\":3}"),
            503);

  // Load the fleet, flip readiness.
  auto loaded =
      LoadCheckpointDirIntoEngine(ckpt_dir_->string(), *data_, &engine);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  front.MarkReady();

  EXPECT_EQ(StatusOf(client, "GET", "/healthz"), 200);
  {
    auto readyz = client.Request("GET", "/readyz");
    ASSERT_TRUE(readyz.ok());
    EXPECT_EQ(readyz.value().status, 200);
    auto parsed = ParseJson(readyz.value().body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().Find("status")->string_value(), "ready");
    const JsonValue* models = parsed.value().Find("models");
    ASSERT_NE(models, nullptr);
    ASSERT_EQ(models->items().size(), 1u);
    EXPECT_EQ(models->items()[0].string_value(), "AT");
  }
  EXPECT_EQ(StatusOf(client, "POST", "/v1/recommend",
                     "{\"model\":\"AT\",\"user\":1,\"top_k\":3}"),
            200);

  // MarkUnready flips it back (a deployment draining models).
  front.MarkUnready();
  HttpClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(StatusOf(fresh, "GET", "/readyz"), 503);
  EXPECT_EQ(StatusOf(fresh, "GET", "/healthz"), 200);

  server.Stop();
}

TEST_F(HttpReadinessTest, GracefulShutdownMidFlightNeverHangs) {
  // 5 rounds of: start a server, put concurrent clients in a request
  // loop, Stop() mid-traffic. Every observed outcome must be a 200, a
  // typed error envelope, or a clean connection error — and Stop must
  // return (the 5-round loop itself is the no-hang assertion; a wedged
  // Stop times out the whole test binary).
  for (int round = 0; round < 5; ++round) {
    ServingEngine engine;
    auto loaded =
        LoadCheckpointDirIntoEngine(ckpt_dir_->string(), *data_, &engine);
    ASSERT_TRUE(loaded.ok());
    ServingHttpFrontOptions front_options;
    front_options.ready_at_start = true;
    ServingHttpFront front(&engine, front_options);
    HttpServerOptions server_options;
    server_options.num_workers = 4;
    HttpServer server(
        [&front](const RequestContext& ctx) { return front.Dispatch(ctx); },
        server_options);
    ASSERT_TRUE(server.Start().ok());
    const uint16_t port = server.port();

    std::atomic<bool> keep_going{true};
    std::atomic<int> ok_count{0};
    std::atomic<int> typed_errors{0};
    std::atomic<int> transport_errors{0};
    std::atomic<int> surprises{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&] {
        while (keep_going.load(std::memory_order_acquire)) {
          HttpClient client;
          if (!client.Connect("127.0.0.1", port).ok()) {
            // Listener already gone: acceptable shutdown outcome.
            transport_errors.fetch_add(1);
            return;
          }
          while (keep_going.load(std::memory_order_acquire)) {
            auto response = client.Request(
                "POST", "/v1/recommend",
                "{\"model\":\"AT\",\"user\":2,\"top_k\":4}",
                "application/json", 5000);
            if (!response.ok()) {
              // Clean close / reset mid-shutdown: acceptable.
              transport_errors.fetch_add(1);
              break;
            }
            if (response.value().status == 200) {
              ok_count.fetch_add(1);
            } else if (response.value().status == 503 ||
                       response.value().status == 429 ||
                       response.value().status == 504) {
              // Typed envelope on the draining/overload path: verify the
              // body really is the envelope.
              auto parsed = ParseJson(response.value().body);
              if (parsed.ok() &&
                  parsed.value().Find("error") != nullptr) {
                typed_errors.fetch_add(1);
              } else {
                surprises.fetch_add(1);
              }
            } else {
              surprises.fetch_add(1);
            }
            if (!response.value().keep_alive) break;
          }
        }
      });
    }

    // Let traffic flow, then pull the plug mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(30 + 10 * round));
    server.Stop();
    EXPECT_FALSE(server.running());
    keep_going.store(false, std::memory_order_release);
    for (auto& t : clients) t.join();

    EXPECT_EQ(surprises.load(), 0) << "round " << round;
    EXPECT_GT(ok_count.load(), 0) << "round " << round
                                  << " (no request completed before Stop)";
    // After Stop, a fresh connect must fail (listener closed).
    HttpClient post_stop;
    EXPECT_FALSE(post_stop.Connect("127.0.0.1", port).ok());
  }
}

TEST_F(HttpReadinessTest, StopIsIdempotentAndStartAfterStopFails) {
  ServingEngine engine;
  ServingHttpFrontOptions front_options;
  front_options.ready_at_start = true;
  ServingHttpFront front(&engine, front_options);
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); });
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // second Stop is a no-op
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.Start().ok());  // one successful Start per instance
}

}  // namespace
}  // namespace longtail
