#include "core/absorbing_cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/absorbing_time.h"
#include "core/entropy.h"
#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

AbsorbingCostOptions SmallOptions() {
  AbsorbingCostOptions options;
  options.walk.exact = true;
  options.walk.max_subgraph_items = 0;
  options.lda.num_topics = 2;
  options.lda.iterations = 30;
  options.lda.seed = 11;
  return options;
}

TEST(AbsorbingCostRecommenderTest, NamesDistinguishVariants) {
  AbsorbingCostRecommender ac1(EntropySource::kItemBased);
  AbsorbingCostRecommender ac2(EntropySource::kTopicBased);
  EXPECT_EQ(ac1.name(), "AC1");
  EXPECT_EQ(ac2.name(), "AC2");
}

TEST(AbsorbingCostRecommenderTest, ItemBasedEntropyMatchesEq10) {
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostRecommender rec(EntropySource::kItemBased, SmallOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  const auto expected = ItemBasedUserEntropy(d);
  ASSERT_EQ(rec.user_entropy().size(), expected.size());
  for (size_t u = 0; u < expected.size(); ++u) {
    EXPECT_DOUBLE_EQ(rec.user_entropy()[u], expected[u]);
  }
  EXPECT_FALSE(rec.lda_model().has_value());
}

TEST(AbsorbingCostRecommenderTest, TopicBasedTrainsLda) {
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostRecommender rec(EntropySource::kTopicBased, SmallOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  ASSERT_TRUE(rec.lda_model().has_value());
  EXPECT_EQ(rec.lda_model()->num_topics(), 2);
  // Entropy of a K=2 topic distribution is bounded by ln 2.
  for (double e : rec.user_entropy()) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, std::log(2.0) + 1e-9);
  }
}

TEST(AbsorbingCostRecommenderTest, Figure2StillRecommendsM4) {
  // The entropy bias changes scores, not the Figure 2 headline: M4 remains
  // U5's top pick (it is both taste-matched and niche).
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostRecommender rec(EntropySource::kItemBased, SmallOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  ASSERT_GE(top->size(), 1u);
  EXPECT_EQ((*top)[0].item, testing::kM4);
}

TEST(AbsorbingCostRecommenderTest, UniformEntropyReducesTowardTime) {
  // If every user had equal entropy h and C == h, AC = h · AT: identical
  // ranking to AT. Emulate by zero entropies + C = 0 → all costs 0; instead
  // compare rankings with C = 1 and a constant entropy vector via the
  // topic-based model on a symmetric dataset. Simplest faithful check:
  // item-based AC ranking on Figure 2 equals AT ranking when we overwrite
  // the cost constant to the mean entropy (approximate invariance).
  Dataset d = MakeFigure2Dataset();
  AbsorbingTimeRecommender at_rec([] {
    GraphWalkOptions o;
    o.exact = true;
    o.max_subgraph_items = 0;
    return o;
  }());
  ASSERT_TRUE(at_rec.Fit(d).ok());
  AbsorbingCostOptions options = SmallOptions();
  options.user_jump_cost = 1.0;
  AbsorbingCostRecommender ac_rec(EntropySource::kItemBased, options);
  ASSERT_TRUE(ac_rec.Fit(d).ok());
  // Both should at least agree on the winner for U5 here.
  auto at_top = at_rec.RecommendTopK(testing::kU5, 1);
  auto ac_top = ac_rec.RecommendTopK(testing::kU5, 1);
  ASSERT_TRUE(at_top.ok());
  ASSERT_TRUE(ac_top.ok());
  EXPECT_EQ((*at_top)[0].item, (*ac_top)[0].item);
}

TEST(AbsorbingCostRecommenderTest, AutoJumpCostIsMeanEntropy) {
  // §4.2 describes C as "the mean cost of jumping from V2 to V1": with the
  // default (auto) setting the resolved C must equal the mean user entropy.
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostOptions options = SmallOptions();
  options.user_jump_cost = 0.0;  // auto
  AbsorbingCostRecommender rec(EntropySource::kItemBased, options);
  ASSERT_TRUE(rec.Fit(d).ok());
  double mean = 0.0;
  for (double e : rec.user_entropy()) mean += e;
  mean /= rec.user_entropy().size();
  EXPECT_NEAR(rec.resolved_user_jump_cost(), mean, 1e-12);
}

TEST(AbsorbingCostRecommenderTest, ExplicitJumpCostRespected) {
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostOptions options = SmallOptions();
  options.user_jump_cost = 2.5;
  AbsorbingCostRecommender rec(EntropySource::kItemBased, options);
  ASSERT_TRUE(rec.Fit(d).ok());
  EXPECT_DOUBLE_EQ(rec.resolved_user_jump_cost(), 2.5);
}

TEST(AbsorbingCostRecommenderTest, RatedItemsExcluded) {
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostRecommender rec(EntropySource::kItemBased, SmallOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  for (UserId u = 0; u < d.num_users(); ++u) {
    auto top = rec.RecommendTopK(u, 6);
    ASSERT_TRUE(top.ok());
    for (const ScoredItem& si : *top) {
      EXPECT_FALSE(d.HasRating(u, si.item));
    }
  }
}

TEST(AbsorbingCostRecommenderTest, TruncatedModeWorks) {
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostOptions options = SmallOptions();
  options.walk.exact = false;
  options.walk.iterations = 15;
  AbsorbingCostRecommender rec(EntropySource::kItemBased, options);
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].item, testing::kM4);
}

TEST(AbsorbingCostRecommenderTest, ScoreItemsAlignedWithTopK) {
  Dataset d = MakeFigure2Dataset();
  AbsorbingCostRecommender rec(EntropySource::kItemBased, SmallOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  std::vector<ItemId> items;
  for (const auto& si : *top) items.push_back(si.item);
  auto scores = rec.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(scores.ok());
  for (size_t k = 0; k < items.size(); ++k) {
    EXPECT_NEAR((*scores)[k], (*top)[k].score, 1e-9);
  }
}

}  // namespace
}  // namespace longtail
