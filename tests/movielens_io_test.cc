#include "data/movielens_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "test_util.h"

namespace longtail {
namespace {

class MovieLensIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(MovieLensIoTest, ParsesDatFormat) {
  const std::string path = TempPath("ratings.dat");
  WriteFile(path,
            "1::10::5::978300760\n"
            "1::20::3::978300761\n"
            "2::10::4::978300762\n");
  auto d = LoadMovieLensRatings(path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_users(), 2);
  EXPECT_EQ(d->num_items(), 2);
  EXPECT_EQ(d->num_ratings(), 3);
  // First-seen remapping: raw user 1 → 0, raw item 10 → 0.
  EXPECT_FLOAT_EQ(d->GetRating(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(d->GetRating(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(d->GetRating(1, 0), 4.0f);
}

TEST_F(MovieLensIoTest, ParsesCsvWithHeader) {
  const std::string path = TempPath("ratings.csv");
  WriteFile(path,
            "userId,movieId,rating,timestamp\n"
            "7,99,4.5,123\n"
            "8,99,2.0,124\n");
  MovieLensLoadOptions options;
  options.dat_format = false;
  auto d = LoadMovieLensRatings(path, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_users(), 2);
  EXPECT_EQ(d->num_items(), 1);
  EXPECT_FLOAT_EQ(d->GetRating(0, 0), 4.5f);
}

TEST_F(MovieLensIoTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.dat");
  WriteFile(path, "1::10::5::0\n\n  \n2::10::3::0\n");
  auto d = LoadMovieLensRatings(path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_ratings(), 2);
}

TEST_F(MovieLensIoTest, MalformedLineFails) {
  const std::string path = TempPath("bad.dat");
  WriteFile(path, "1::10\n");
  EXPECT_FALSE(LoadMovieLensRatings(path).ok());
}

TEST_F(MovieLensIoTest, NonNumericFieldFails) {
  const std::string path = TempPath("nonnum.dat");
  WriteFile(path, "abc::10::5::0\n");
  EXPECT_FALSE(LoadMovieLensRatings(path).ok());
}

TEST_F(MovieLensIoTest, NonPositiveRatingFails) {
  const std::string path = TempPath("zero.dat");
  WriteFile(path, "1::10::0::0\n");
  EXPECT_FALSE(LoadMovieLensRatings(path).ok());
}

TEST_F(MovieLensIoTest, MissingFileFails) {
  auto d = LoadMovieLensRatings(TempPath("does_not_exist.dat"));
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kIOError);
}

TEST_F(MovieLensIoTest, EmptyFileFails) {
  const std::string path = TempPath("empty.dat");
  WriteFile(path, "");
  EXPECT_FALSE(LoadMovieLensRatings(path).ok());
}

TEST_F(MovieLensIoTest, MinUserRatingsFilterRemapsUsers) {
  const std::string path = TempPath("filter.dat");
  WriteFile(path,
            "1::10::5::0\n"
            "1::20::4::0\n"
            "2::10::3::0\n"    // user 2 has only one rating
            "3::20::2::0\n"
            "3::10::5::0\n");
  MovieLensLoadOptions options;
  options.min_user_ratings = 2;
  auto d = LoadMovieLensRatings(path, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_users(), 2);  // users 1 and 3 survive
  EXPECT_EQ(d->num_ratings(), 4);
  for (UserId u = 0; u < d->num_users(); ++u) {
    EXPECT_GE(d->UserDegree(u), 2);
  }
}

TEST_F(MovieLensIoTest, WriteLoadRoundTrip) {
  Dataset original = testing::MakeFigure2Dataset();
  const std::string path = TempPath("roundtrip.dat");
  ASSERT_TRUE(WriteMovieLensRatings(original, path).ok());
  auto loaded = LoadMovieLensRatings(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_users(), original.num_users());
  EXPECT_EQ(loaded->num_items(), original.num_items());
  EXPECT_EQ(loaded->num_ratings(), original.num_ratings());
  // Users are written user-major so their ids survive the first-seen
  // remap; items are re-labelled in first-seen order, so compare
  // permutation-invariant structure instead of raw ids.
  for (UserId u = 0; u < original.num_users(); ++u) {
    EXPECT_EQ(loaded->UserDegree(u), original.UserDegree(u));
    std::vector<float> a(original.UserValues(u).begin(),
                         original.UserValues(u).end());
    std::vector<float> b(loaded->UserValues(u).begin(),
                         loaded->UserValues(u).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "user " << u;
  }
  std::vector<int> pop_a, pop_b;
  for (ItemId i = 0; i < original.num_items(); ++i) {
    pop_a.push_back(original.ItemPopularity(i));
    pop_b.push_back(loaded->ItemPopularity(i));
  }
  std::sort(pop_a.begin(), pop_a.end());
  std::sort(pop_b.begin(), pop_b.end());
  EXPECT_EQ(pop_a, pop_b);
}

}  // namespace
}  // namespace longtail
