#include "data/split.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "data/longtail_stats.h"

namespace longtail {
namespace {

Dataset MakeCorpus() {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.08));
  EXPECT_TRUE(data.ok());
  return std::move(data).value().dataset;
}

TEST(SplitTest, TestCasesAreLongTailHighRatings) {
  const Dataset full = MakeCorpus();
  LongTailSplitOptions options;
  options.num_test_cases = 100;
  auto split = MakeLongTailSplit(full, options);
  ASSERT_TRUE(split.ok());
  EXPECT_GT(split->test.size(), 0u);
  const auto tail = TailItemFlags(full, options.tail_rating_share);
  for (const TestCase& c : split->test) {
    EXPECT_GE(c.value, options.min_rating);
    EXPECT_TRUE(tail[c.item]) << "test item not in the long tail";
  }
}

TEST(SplitTest, HeldOutRatingsRemovedFromTrain) {
  const Dataset full = MakeCorpus();
  LongTailSplitOptions options;
  options.num_test_cases = 100;
  auto split = MakeLongTailSplit(full, options);
  ASSERT_TRUE(split.ok());
  for (const TestCase& c : split->test) {
    EXPECT_FALSE(split->train.HasRating(c.user, c.item));
    EXPECT_TRUE(full.HasRating(c.user, c.item));
  }
  EXPECT_EQ(split->train.num_ratings() + static_cast<int64_t>(split->test.size()),
            full.num_ratings());
}

TEST(SplitTest, AtMostOneTestCasePerUser) {
  const Dataset full = MakeCorpus();
  LongTailSplitOptions options;
  options.num_test_cases = 500;
  auto split = MakeLongTailSplit(full, options);
  ASSERT_TRUE(split.ok());
  std::set<UserId> users;
  for (const TestCase& c : split->test) {
    EXPECT_TRUE(users.insert(c.user).second) << "duplicate user " << c.user;
  }
}

TEST(SplitTest, UsersKeepMinimumDegree) {
  const Dataset full = MakeCorpus();
  LongTailSplitOptions options;
  options.num_test_cases = 200;
  options.min_remaining_user_degree = 5;
  auto split = MakeLongTailSplit(full, options);
  ASSERT_TRUE(split.ok());
  for (const TestCase& c : split->test) {
    EXPECT_GE(split->train.UserDegree(c.user), 5);
  }
}

TEST(SplitTest, MetadataCopiedToTrain) {
  const Dataset full = MakeCorpus();
  LongTailSplitOptions options;
  options.num_test_cases = 10;
  auto split = MakeLongTailSplit(full, options);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.item_genres, full.item_genres);
  EXPECT_EQ(split->train.item_categories, full.item_categories);
  EXPECT_EQ(split->train.num_genres, full.num_genres);
}

TEST(SplitTest, DeterministicForSeed) {
  const Dataset full = MakeCorpus();
  LongTailSplitOptions options;
  options.num_test_cases = 50;
  auto s1 = MakeLongTailSplit(full, options);
  auto s2 = MakeLongTailSplit(full, options);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->test.size(), s2->test.size());
  for (size_t k = 0; k < s1->test.size(); ++k) {
    EXPECT_EQ(s1->test[k].user, s2->test[k].user);
    EXPECT_EQ(s1->test[k].item, s2->test[k].item);
  }
}

TEST(SplitTest, ImpossibleThresholdFails) {
  const Dataset full = MakeCorpus();
  LongTailSplitOptions options;
  options.min_rating = 99.0f;
  EXPECT_FALSE(MakeLongTailSplit(full, options).ok());
}

TEST(SampleTestUsersTest, RespectsCountAndDegree) {
  const Dataset full = MakeCorpus();
  const auto users = SampleTestUsers(full, 50, 10, 1);
  EXPECT_LE(users.size(), 50u);
  for (UserId u : users) {
    EXPECT_GE(full.UserDegree(u), 10);
  }
  std::set<UserId> unique(users.begin(), users.end());
  EXPECT_EQ(unique.size(), users.size());
}

TEST(SampleTestUsersTest, CountLargerThanPopulation) {
  auto d = Dataset::Create(3, 2,
                           {{0, 0, 5.0f}, {1, 0, 4.0f}, {2, 1, 3.0f}});
  ASSERT_TRUE(d.ok());
  const auto users = SampleTestUsers(*d, 100, 1, 2);
  EXPECT_EQ(users.size(), 3u);
}

}  // namespace
}  // namespace longtail
