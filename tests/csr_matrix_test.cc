#include "linalg/csr_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace longtail {
namespace {

CsrMatrix Make2x3() {
  // [1 0 2]
  // [0 3 0]
  auto m = CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {0, 2, 2.0},
                                          {1, 1, 3.0}});
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

TEST(CsrMatrixTest, EmptyMatrix) {
  auto m = CsrMatrix::FromTriplets(0, 0, {});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 0);
  EXPECT_EQ(m->cols(), 0);
  EXPECT_EQ(m->nnz(), 0);
}

TEST(CsrMatrixTest, BasicAccessors) {
  CsrMatrix m = Make2x3();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 3.0);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 1);
}

TEST(CsrMatrixTest, DuplicateTripletsSum) {
  auto m = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 1);
  EXPECT_DOUBLE_EQ(m->At(0, 0), 4.0);
}

TEST(CsrMatrixTest, ColumnsSortedWithinRow) {
  auto m = CsrMatrix::FromTriplets(1, 5, {{0, 4, 1.0}, {0, 0, 2.0},
                                          {0, 2, 3.0}});
  ASSERT_TRUE(m.ok());
  const auto idx = m->RowIndices(0);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 2);
  EXPECT_EQ(idx[2], 4);
}

TEST(CsrMatrixTest, OutOfBoundsTripletRejected) {
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{0, -1, 1.0}}).ok());
}

TEST(CsrMatrixTest, EmptyRowsHaveZeroNnz) {
  auto m = CsrMatrix::FromTriplets(4, 2, {{2, 1, 1.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->RowNnz(0), 0);
  EXPECT_EQ(m->RowNnz(1), 0);
  EXPECT_EQ(m->RowNnz(2), 1);
  EXPECT_EQ(m->RowNnz(3), 0);
}

TEST(CsrMatrixTest, RowSum) {
  CsrMatrix m = Make2x3();
  EXPECT_DOUBLE_EQ(m.RowSum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 3.0);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  CsrMatrix m = Make2x3();
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y;
  m.Multiply(x, &y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 * 1 + 2.0 * 3);  // 7
  EXPECT_DOUBLE_EQ(y[1], 3.0 * 2);            // 6
}

TEST(CsrMatrixTest, MultiplyTransposeMatchesDense) {
  CsrMatrix m = Make2x3();
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y;
  m.MultiplyTranspose(x, &y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  CsrMatrix m = Make2x3();
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.nnz(), m.nnz());
  for (int32_t r = 0; r < m.rows(); ++r) {
    for (int32_t c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(m.At(r, c), t.At(c, r));
    }
  }
  CsrMatrix tt = t.Transpose();
  for (int32_t r = 0; r < m.rows(); ++r) {
    for (int32_t c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(m.At(r, c), tt.At(r, c));
    }
  }
}

TEST(CsrMatrixTest, FrobeniusNorm) {
  CsrMatrix m = Make2x3();
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), std::sqrt(1.0 + 4.0 + 9.0));
}

TEST(CsrMatrixTest, FromCsrArraysValidates) {
  // Good arrays.
  EXPECT_TRUE(CsrMatrix::FromCsrArrays(2, 2, {0, 1, 2}, {1, 0}, {1.0, 2.0})
                  .ok());
  // row_ptr wrong size.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(2, 2, {0, 2}, {0, 1}, {1.0, 2.0})
                   .ok());
  // Non-monotone row_ptr.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0})
                   .ok());
  // Unsorted columns within a row.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(1, 3, {0, 2}, {2, 0}, {1.0, 2.0})
                   .ok());
  // Column out of bounds.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(1, 2, {0, 1}, {5}, {1.0}).ok());
  // nnz mismatch.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(1, 2, {0, 2}, {0}, {1.0}).ok());
}

TEST(CsrMatrixTest, NegativeDimensionsRejected) {
  EXPECT_FALSE(CsrMatrix::FromTriplets(-1, 2, {}).ok());
}

}  // namespace
}  // namespace longtail
