// Unit coverage for the HTTP front's building blocks, independent of any
// socket: the Status -> HTTP status mapping and JSON error envelope
// (http/http_envelope.h), the strict JSON reader/writer (http/http_json.h)
// including the bit-identical double round trip the parity test relies on,
// the incremental request parser's limits and keep-alive semantics
// (http/http_parser.h), and the router's 404/405 envelopes (http/router.h).
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "http/http_envelope.h"
#include "http/http_json.h"
#include "http/http_parser.h"
#include "http/router.h"

namespace longtail {
namespace {

// ---------------------------------------------------------------- envelope

TEST(StatusToHttpTest, MappingTable) {
  EXPECT_EQ(StatusToHttp(StatusCode::kOk), 200);
  EXPECT_EQ(StatusToHttp(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(StatusToHttp(StatusCode::kOutOfRange), 400);
  EXPECT_EQ(StatusToHttp(StatusCode::kNotFound), 404);
  EXPECT_EQ(StatusToHttp(StatusCode::kResourceExhausted), 429);
  EXPECT_EQ(StatusToHttp(StatusCode::kInternal), 500);
  EXPECT_EQ(StatusToHttp(StatusCode::kIOError), 500);
  EXPECT_EQ(StatusToHttp(StatusCode::kUnimplemented), 501);
  EXPECT_EQ(StatusToHttp(StatusCode::kFailedPrecondition), 503);
  EXPECT_EQ(StatusToHttp(StatusCode::kDeadlineExceeded), 504);
}

TEST(ErrorEnvelopeTest, ShapeAndContent) {
  const HttpResponse response =
      ErrorResponse(Status::ResourceExhausted("queue full"));
  EXPECT_EQ(response.status, 429);
  EXPECT_EQ(response.content_type, "application/json");

  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr);
  ASSERT_NE(error->Find("code"), nullptr);
  EXPECT_EQ(error->Find("code")->string_value(), "ResourceExhausted");
  ASSERT_NE(error->Find("http_status"), nullptr);
  EXPECT_EQ(error->Find("http_status")->number_value(), 429.0);
  ASSERT_NE(error->Find("message"), nullptr);
  EXPECT_EQ(error->Find("message")->string_value(), "queue full");
}

TEST(ErrorEnvelopeTest, ParserOverrideKeepsStatusCodeName) {
  // Parser-level statuses (413/414/431/505) carry a Status whose code
  // wouldn't map there on its own; the envelope reports the wire status.
  const HttpResponse response = ErrorResponseWithHttpStatus(
      431, Status::InvalidArgument("too many headers"));
  EXPECT_EQ(response.status, 431);
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("http_status")->number_value(), 431.0);
  EXPECT_EQ(error->Find("code")->string_value(), "InvalidArgument");
}

// -------------------------------------------------------------------- json

TEST(JsonTest, ParsesScalarsAndStructure) {
  auto doc = ParseJson(
      R"({"a": 1, "b": -2.5e3, "c": "hi\u00e9", "d": [true, false, null],)"
      R"( "e": {"nested": "x"}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& root = doc.value();
  EXPECT_EQ(root.Find("a")->number_value(), 1.0);
  EXPECT_EQ(root.Find("b")->number_value(), -2500.0);
  EXPECT_EQ(root.Find("c")->string_value(), "hi\xc3\xa9");
  ASSERT_TRUE(root.Find("d")->is_array());
  EXPECT_EQ(root.Find("d")->items().size(), 3u);
  EXPECT_TRUE(root.Find("d")->items()[2].is_null());
  EXPECT_EQ(root.Find("e")->Find("nested")->string_value(), "x");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",             // empty
      "{",            // unterminated object
      "[1,]",         // trailing comma
      "{\"a\" 1}",    // missing colon
      "\"unterminated", // unterminated string
      "01",           // leading zero
      "1.",           // bare decimal point
      "+1",           // explicit plus
      "nul",          // truncated keyword
      "{} extra",     // trailing content
      "\"\\ud800\"",  // lone surrogate
      "\"\x01\"",     // bare control character
      "{\"a\": 1} {\"b\": 2}",  // two documents
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, DepthCapFailsCleanlyNotByStackOverflow) {
  std::string deep(100000, '[');
  auto result = ParseJson(deep);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("deep"), std::string::npos);
}

TEST(JsonTest, WriterEscapesAndStaysParseable) {
  JsonValue root = JsonValue::Object();
  root.Set("s", JsonValue::String("a\"b\\c\nd\te\x01f"));
  const std::string text = WriteJson(root);
  auto reparsed = ParseJson(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed.value().Find("s")->string_value(), "a\"b\\c\nd\te\x01f");
}

TEST(JsonTest, DoublesRoundTripBitIdentical) {
  // The property the HTTP parity test builds on: a score serialized into a
  // response body parses back to the bit-identical double.
  const double cases[] = {0.0,
                          1.0,
                          -1.0,
                          1.0 / 3.0,
                          0.1,
                          1e-300,
                          1.7976931348623157e308,
                          5e-324,
                          123456789.123456789,
                          -0.000123456,
                          static_cast<double>(1ull << 53)};
  for (const double value : cases) {
    JsonValue root = JsonValue::Object();
    root.Set("v", JsonValue::Number(value));
    auto reparsed = ParseJson(WriteJson(root));
    ASSERT_TRUE(reparsed.ok());
    const double back = reparsed.value().Find("v")->number_value();
    EXPECT_EQ(std::memcmp(&back, &value, sizeof(double)), 0)
        << "value " << value << " serialized as " << WriteJson(root);
  }
}

TEST(JsonTest, IntegralDoublesPrintAsIntegers) {
  JsonValue root = JsonValue::Object();
  root.Set("k", JsonValue::Number(42.0));
  EXPECT_EQ(WriteJson(root), "{\"k\":42}");
}

TEST(JsonTest, AsInt64ChecksIntegralityAndRange) {
  EXPECT_TRUE(JsonValue::Number(7).AsInt64(0, 10).ok());
  EXPECT_EQ(JsonValue::Number(7).AsInt64(0, 10).value(), 7);
  EXPECT_FALSE(JsonValue::Number(7.5).AsInt64(0, 10).ok());
  EXPECT_FALSE(JsonValue::Number(11).AsInt64(0, 10).ok());
  EXPECT_FALSE(JsonValue::Number(-1).AsInt64(0, 10).ok());
  EXPECT_FALSE(JsonValue::String("7").AsInt64(0, 10).ok());
}

// ------------------------------------------------------------------ parser

HttpRequestParser::ParseResult Feed(HttpRequestParser& parser,
                                    std::string_view wire,
                                    size_t* consumed = nullptr) {
  size_t used = 0;
  const auto result = parser.Consume(wire, &used);
  if (consumed != nullptr) *consumed = used;
  return result;
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /v1/score?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"user\": 3}";
  ASSERT_EQ(Feed(parser, wire), HttpRequestParser::ParseResult::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/score?x=1");
  EXPECT_EQ(request.path(), "/v1/score");
  EXPECT_EQ(request.body, "{\"user\": 3}");
  ASSERT_NE(request.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*request.FindHeader("content-type"), "application/json");
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpParserTest, KeepAliveDefaultsByVersion) {
  {
    HttpRequestParser parser;
    ASSERT_EQ(Feed(parser, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
              HttpRequestParser::ParseResult::kComplete);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpRequestParser parser;
    ASSERT_EQ(Feed(parser, "GET / HTTP/1.0\r\n\r\n"),
              HttpRequestParser::ParseResult::kComplete);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpRequestParser parser;
    ASSERT_EQ(
        Feed(parser, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
        HttpRequestParser::ParseResult::kComplete);
    EXPECT_TRUE(parser.request().keep_alive);
  }
}

TEST(HttpParserTest, LimitStatuses) {
  {  // 414: request line too long.
    HttpParserLimits limits;
    limits.max_request_line_bytes = 32;
    HttpRequestParser parser(limits);
    const std::string wire =
        "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n";
    ASSERT_EQ(Feed(parser, wire), HttpRequestParser::ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 414);
  }
  {  // 431: header section too large.
    HttpParserLimits limits;
    limits.max_header_bytes = 64;
    HttpRequestParser parser(limits);
    const std::string wire = "GET / HTTP/1.1\r\nX-Big: " +
                             std::string(200, 'b') + "\r\n\r\n";
    ASSERT_EQ(Feed(parser, wire), HttpRequestParser::ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 431);
  }
  {  // 431: too many headers.
    HttpParserLimits limits;
    limits.max_headers = 2;
    HttpRequestParser parser(limits);
    const std::string wire =
        "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
    ASSERT_EQ(Feed(parser, wire), HttpRequestParser::ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 431);
  }
  {  // 413: declared body over the cap.
    HttpParserLimits limits;
    limits.max_body_bytes = 16;
    HttpRequestParser parser(limits);
    const std::string wire =
        "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
    ASSERT_EQ(Feed(parser, wire), HttpRequestParser::ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 413);
  }
  {  // 501: Transfer-Encoding is not implemented.
    HttpRequestParser parser;
    ASSERT_EQ(Feed(parser,
                   "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
              HttpRequestParser::ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 501);
  }
  {  // 505: unsupported HTTP version.
    HttpRequestParser parser;
    ASSERT_EQ(Feed(parser, "GET / HTTP/2.0\r\n\r\n"),
              HttpRequestParser::ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 505);
  }
}

TEST(HttpParserTest, PipelinedRequestsLeaveTrailingBytesUnclaimed) {
  HttpRequestParser parser;
  const std::string first = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string second = "GET /metrics HTTP/1.1\r\n\r\n";
  size_t consumed = 0;
  ASSERT_EQ(Feed(parser, first + second, &consumed),
            HttpRequestParser::ParseResult::kComplete);
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(parser.request().target, "/healthz");

  parser.Reset();
  ASSERT_EQ(Feed(parser, second, &consumed),
            HttpRequestParser::ParseResult::kComplete);
  EXPECT_EQ(consumed, second.size());
  EXPECT_EQ(parser.request().target, "/metrics");
}

TEST(HttpParserTest, SplitAcrossArbitraryBoundaries) {
  const std::string wire =
      "POST /v1/recommend HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello";
  for (size_t split = 0; split <= wire.size(); ++split) {
    HttpRequestParser parser;
    const auto first =
        Feed(parser, std::string_view(wire).substr(0, split));
    if (split < wire.size()) {
      ASSERT_EQ(first, HttpRequestParser::ParseResult::kNeedMore)
          << "split at " << split;
      ASSERT_EQ(Feed(parser, std::string_view(wire).substr(split)),
                HttpRequestParser::ParseResult::kComplete)
          << "split at " << split;
    } else {
      ASSERT_EQ(first, HttpRequestParser::ParseResult::kComplete);
    }
    EXPECT_EQ(parser.request().body, "hello") << "split at " << split;
  }
}

TEST(HttpParserTest, HostileContentLengthValues) {
  const char* bad[] = {
      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",
  };
  for (const char* wire : bad) {
    HttpRequestParser parser;
    ASSERT_EQ(Feed(parser, wire), HttpRequestParser::ParseResult::kError)
        << wire;
    EXPECT_EQ(parser.error_http_status(), 400) << wire;
  }
}

TEST(HttpResponseTest, SerializationRoundTrip) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  const std::string wire = SerializeHttpResponse(response, true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);
  const std::string closing = SerializeHttpResponse(response, false);
  EXPECT_NE(closing.find("Connection: close\r\n"), std::string::npos);
}

// ------------------------------------------------------------------ router

TEST(RouterTest, DispatchesAndAnswersTypedEnvelopes) {
  Router router;
  router.Handle("GET", "/ping", [](const RequestContext&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });

  HttpRequestParser parser;
  ASSERT_EQ(Feed(parser, "GET /ping?q=1 HTTP/1.1\r\n\r\n"),
            HttpRequestParser::ParseResult::kComplete);
  const RequestContext ok{parser.request(), "t", false};
  EXPECT_EQ(router.Dispatch(ok).body, "pong");

  HttpRequestParser missing;
  ASSERT_EQ(Feed(missing, "GET /nope HTTP/1.1\r\n\r\n"),
            HttpRequestParser::ParseResult::kComplete);
  const HttpResponse not_found =
      router.Dispatch({missing.request(), "t", false});
  EXPECT_EQ(not_found.status, 404);
  auto not_found_body = ParseJson(not_found.body);
  ASSERT_TRUE(not_found_body.ok());
  EXPECT_EQ(not_found_body.value().Find("error")->Find("code")->string_value(),
            "NotFound");

  HttpRequestParser wrong_method;
  ASSERT_EQ(Feed(wrong_method, "POST /ping HTTP/1.1\r\n\r\n"),
            HttpRequestParser::ParseResult::kComplete);
  const HttpResponse not_allowed =
      router.Dispatch({wrong_method.request(), "t", false});
  EXPECT_EQ(not_allowed.status, 405);
  bool saw_allow = false;
  for (const auto& [name, value] : not_allowed.extra_headers) {
    if (name == "Allow") {
      saw_allow = true;
      EXPECT_EQ(value, "GET");
    }
  }
  EXPECT_TRUE(saw_allow);
}

}  // namespace
}  // namespace longtail
