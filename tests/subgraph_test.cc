#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;
using testing::MakePathDataset;

TEST(SubgraphTest, FullGraphWhenUncapped) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  SubgraphOptions options;
  options.max_items = 0;  // no cap
  Subgraph sub = ExtractSubgraph(g, {g.UserNode(testing::kU5)}, options);
  // Figure 2's graph is connected, so everything is reached.
  EXPECT_EQ(sub.users.size(), 5u);
  EXPECT_EQ(sub.items.size(), 6u);
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

TEST(SubgraphTest, SeedAlwaysIncluded) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  SubgraphOptions options;
  options.max_items = 1;
  Subgraph sub = ExtractSubgraph(g, {g.ItemNode(testing::kM4)}, options);
  EXPECT_GE(sub.items.size(), 1u);
  EXPECT_GE(sub.LocalItemNode(testing::kM4), 0);
}

TEST(SubgraphTest, RespectsItemCapApproximately) {
  // The cap is checked after each insertion: item count stays within the
  // cap + one BFS neighbor expansion.
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.05));
  ASSERT_TRUE(data.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(data->dataset);
  SubgraphOptions options;
  options.max_items = 30;
  Subgraph sub = ExtractSubgraph(g, {g.UserNode(0)}, options);
  EXPECT_GE(static_cast<int32_t>(sub.items.size()), 1);
  EXPECT_LE(static_cast<int32_t>(sub.items.size()), options.max_items + 1);
}

TEST(SubgraphTest, MappingsRoundTrip) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  SubgraphOptions options;
  options.max_items = 0;
  Subgraph sub = ExtractSubgraph(g, {g.UserNode(testing::kU5)}, options);
  for (size_t lu = 0; lu < sub.users.size(); ++lu) {
    EXPECT_EQ(sub.LocalUserNode(sub.users[lu]), static_cast<NodeId>(lu));
  }
  for (size_t li = 0; li < sub.items.size(); ++li) {
    EXPECT_EQ(sub.LocalItemNode(sub.items[li]),
              static_cast<NodeId>(sub.users.size() + li));
  }
  EXPECT_EQ(sub.LocalUserNode(-1), -1);
  EXPECT_EQ(sub.LocalItemNode(999), -1);
}

TEST(SubgraphTest, InducedWeightsMatchOriginal) {
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  SubgraphOptions options;
  options.max_items = 0;
  Subgraph sub = ExtractSubgraph(g, {g.UserNode(testing::kU5)}, options);
  // Every induced edge weight equals the original rating.
  for (size_t lu = 0; lu < sub.users.size(); ++lu) {
    const NodeId local = static_cast<NodeId>(lu);
    const auto nbrs = sub.graph.Neighbors(local);
    const auto wts = sub.graph.Weights(local);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const ItemId item = sub.items[sub.graph.ItemOf(nbrs[k])];
      EXPECT_DOUBLE_EQ(wts[k], d.GetRating(sub.users[lu], item));
    }
  }
}

TEST(SubgraphTest, DisconnectedComponentExcluded) {
  // Two components: {u0, i0} and {u1, i1}. BFS from u0 never reaches u1.
  auto d = Dataset::Create(2, 2, {{0, 0, 1.0f}, {1, 1, 1.0f}});
  ASSERT_TRUE(d.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  SubgraphOptions options;
  options.max_items = 0;
  Subgraph sub = ExtractSubgraph(g, {g.UserNode(0)}, options);
  EXPECT_EQ(sub.users.size(), 1u);
  EXPECT_EQ(sub.items.size(), 1u);
  EXPECT_EQ(sub.LocalUserNode(1), -1);
  EXPECT_EQ(sub.LocalItemNode(1), -1);
}

TEST(SubgraphTest, BfsLevelsExpandOutward) {
  // On a path graph, a small cap keeps only nearby nodes.
  BipartiteGraph g = BipartiteGraph::FromDataset(MakePathDataset(6));
  SubgraphOptions options;
  options.max_items = 2;
  Subgraph sub = ExtractSubgraph(g, {g.UserNode(0)}, options);
  // Items are i0..i4 along the path; the closest ones are kept.
  EXPECT_GE(sub.LocalItemNode(0), 0);
  EXPECT_EQ(sub.LocalItemNode(4), -1);
}

TEST(SubgraphTest, MultipleSeeds) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakePathDataset(6));
  SubgraphOptions options;
  options.max_items = 1;
  Subgraph sub = ExtractSubgraph(
      g, {g.UserNode(0), g.UserNode(5)}, options);
  EXPECT_GE(sub.LocalUserNode(0), 0);
  EXPECT_GE(sub.LocalUserNode(5), 0);
}

}  // namespace
}  // namespace longtail
