// WalkWorkspace: the workspace extraction path must produce subgraphs
// identical to the allocating path, invalidate stale lookups between
// queries in O(1), and reuse its buffers across graphs of different sizes.
#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "graph/markov.h"
#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;
using testing::MakePathDataset;

void ExpectSameSubgraph(const Subgraph& expected, const Subgraph& actual,
                        const BipartiteGraph& g) {
  ASSERT_EQ(expected.users, actual.users);
  ASSERT_EQ(expected.items, actual.items);
  ASSERT_EQ(expected.graph.num_nodes(), actual.graph.num_nodes());
  ASSERT_EQ(expected.graph.num_edges(), actual.graph.num_edges());
  for (NodeId v = 0; v < expected.graph.num_nodes(); ++v) {
    const auto en = expected.graph.Neighbors(v);
    const auto an = actual.graph.Neighbors(v);
    ASSERT_EQ(en.size(), an.size()) << "node " << v;
    for (size_t k = 0; k < en.size(); ++k) {
      EXPECT_EQ(en[k], an[k]) << "node " << v << " entry " << k;
      EXPECT_EQ(expected.graph.Weights(v)[k], actual.graph.Weights(v)[k]);
    }
    EXPECT_EQ(expected.graph.WeightedDegree(v),
              actual.graph.WeightedDegree(v));
  }
  for (UserId u = 0; u < g.num_users(); ++u) {
    EXPECT_EQ(expected.LocalUserNode(u), actual.LocalUserNode(u))
        << "user " << u;
  }
  for (ItemId i = 0; i < g.num_items(); ++i) {
    EXPECT_EQ(expected.LocalItemNode(i), actual.LocalItemNode(i))
        << "item " << i;
  }
}

TEST(WalkWorkspaceTest, MatchesAllocatingExtraction) {
  const Dataset d = MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(d);
  WalkWorkspace workspace;
  for (UserId u = 0; u < d.num_users(); ++u) {
    SubgraphOptions options;
    options.max_items = 0;
    const std::vector<NodeId> seeds = {g.UserNode(u)};
    const Subgraph expected = ExtractSubgraph(g, seeds, options);
    const Subgraph& actual = ExtractSubgraphInto(g, seeds, options,
                                                 &workspace);
    ExpectSameSubgraph(expected, actual, g);
  }
}

TEST(WalkWorkspaceTest, MatchesAllocatingExtractionWithCap) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.02));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  const BipartiteGraph g = BipartiteGraph::FromDataset(d);
  WalkWorkspace workspace;
  SubgraphOptions options;
  options.max_items = 40;
  for (UserId u = 0; u < std::min<UserId>(25, d.num_users()); ++u) {
    const std::vector<NodeId> seeds = {g.UserNode(u)};
    const Subgraph expected = ExtractSubgraph(g, seeds, options);
    const Subgraph& actual = ExtractSubgraphInto(g, seeds, options,
                                                 &workspace);
    ExpectSameSubgraph(expected, actual, g);
  }
}

// A node present in query 1's subgraph but absent from query 2's must look
// absent after query 2 — the epoch bump invalidates stale table entries.
TEST(WalkWorkspaceTest, StaleLookupsInvalidatedBetweenQueries) {
  // Path graph u0-i0-u1-i1-...: a 1-hop cap around u0 excludes the far end.
  const Dataset d = MakePathDataset(6);
  const BipartiteGraph g = BipartiteGraph::FromDataset(d);
  WalkWorkspace workspace;
  SubgraphOptions uncapped;
  uncapped.max_items = 0;
  const Subgraph& full = ExtractSubgraphInto(g, {g.UserNode(0)}, uncapped,
                                             &workspace);
  EXPECT_GE(full.LocalUserNode(5), 0);
  EXPECT_GE(full.LocalItemNode(4), 0);

  SubgraphOptions capped;
  capped.max_items = 1;
  const Subgraph& small = ExtractSubgraphInto(g, {g.UserNode(0)}, capped,
                                              &workspace);
  // Far end of the path is now outside the subgraph; stale entries from the
  // previous (full) extraction must not leak through.
  EXPECT_EQ(small.LocalUserNode(5), -1);
  EXPECT_EQ(small.LocalItemNode(4), -1);
  EXPECT_GE(small.LocalUserNode(0), 0);
  EXPECT_EQ(small.LocalUserNode(-1), -1);
  EXPECT_EQ(small.LocalItemNode(999), -1);
}

// One workspace must serve graphs of different sizes back to back (the
// thread-local single-query path sees whatever recommender calls next).
TEST(WalkWorkspaceTest, ReusableAcrossGraphs) {
  const Dataset small = MakePathDataset(3);
  const Dataset big = MakeFigure2Dataset();
  const BipartiteGraph gs = BipartiteGraph::FromDataset(small);
  const BipartiteGraph gb = BipartiteGraph::FromDataset(big);
  WalkWorkspace workspace;
  SubgraphOptions options;
  options.max_items = 0;
  const Subgraph& s1 = ExtractSubgraphInto(gs, {gs.UserNode(0)}, options,
                                           &workspace);
  EXPECT_EQ(s1.users.size(), 3u);
  const Subgraph& s2 = ExtractSubgraphInto(gb, {gb.UserNode(0)}, options,
                                           &workspace);
  EXPECT_EQ(s2.users.size(), 5u);
  EXPECT_EQ(s2.items.size(), 6u);
  const Subgraph& s3 = ExtractSubgraphInto(gs, {gs.UserNode(2)}, options,
                                           &workspace);
  EXPECT_EQ(s3.users.size(), 3u);
}

// The workspace DP overload must agree exactly with the allocating one.
TEST(WalkWorkspaceTest, TruncatedDpOverloadMatches) {
  const Dataset d = MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.ItemNode(0)] = true;
  const std::vector<double> unit(g.num_nodes(), 1.0);
  const std::vector<double> expected =
      AbsorbingValueTruncated(g, absorbing, unit, 15);
  std::vector<double> value;
  std::vector<double> scratch;
  for (int round = 0; round < 3; ++round) {
    AbsorbingValueTruncated(g, absorbing, unit, 15, &value, &scratch);
    EXPECT_EQ(expected, value) << "round " << round;
  }
}

TEST(WalkWorkspaceTest, ExactOverloadMatches) {
  const Dataset d = MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.ItemNode(0)] = true;
  const std::vector<double> unit(g.num_nodes(), 1.0);
  auto expected = AbsorbingValueExact(g, absorbing, unit);
  ASSERT_TRUE(expected.ok());
  std::vector<double> value;
  SolverScratch scratch;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(AbsorbingValueExactInto(g, absorbing, unit, {}, &value,
                                        &scratch)
                    .ok());
    EXPECT_EQ(*expected, value) << "round " << round;
  }
}

// In-place BipartiteGraph assignment must equal FromAdjacency output.
TEST(WalkWorkspaceTest, InPlaceAssignMatchesFromAdjacency) {
  std::vector<std::vector<std::pair<NodeId, double>>> adjacency(4);
  // 2 users, 2 items: u0-i0 (w=2), u0-i1 (w=3), u1-i1 (w=5).
  auto add = [&](NodeId a, NodeId b, double w) {
    adjacency[a].push_back({b, w});
    adjacency[b].push_back({a, w});
  };
  add(0, 2, 2.0);
  add(0, 3, 3.0);
  add(1, 3, 5.0);
  const BipartiteGraph expected = BipartiteGraph::FromAdjacency(2, 2,
                                                                adjacency);
  BipartiteGraph g;
  const std::vector<int32_t> degrees = {2, 1, 1, 2};
  for (int round = 0; round < 2; ++round) {
    g.BeginAssign(2, 2, degrees);
    g.AssignEdge(0, 2, 2.0);
    g.AssignEdge(0, 3, 3.0);
    g.AssignEdge(1, 3, 5.0);
    g.FinishAssign();
    ASSERT_EQ(expected.num_nodes(), g.num_nodes());
    EXPECT_EQ(expected.num_edges(), g.num_edges());
    EXPECT_EQ(expected.TotalWeight(), g.TotalWeight());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(expected.Degree(v), g.Degree(v));
      EXPECT_EQ(expected.WeightedDegree(v), g.WeightedDegree(v));
      for (int32_t k = 0; k < g.Degree(v); ++k) {
        EXPECT_EQ(expected.Neighbors(v)[k], g.Neighbors(v)[k]);
        EXPECT_EQ(expected.Weights(v)[k], g.Weights(v)[k]);
      }
    }
  }
}

}  // namespace
}  // namespace longtail
