#include "data/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/longtail_stats.h"

namespace longtail {
namespace {

TEST(GeneratorTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_users = 150;
  spec.num_items = 120;
  spec.mean_user_degree = 20;
  spec.min_user_degree = 5;
  spec.num_genres = 4;
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  EXPECT_EQ(d.num_users(), 150);
  EXPECT_EQ(d.num_items(), 120);
  EXPECT_GT(d.num_ratings(), 0);
}

TEST(GeneratorTest, EveryUserMeetsMinDegree) {
  SyntheticSpec spec;
  spec.num_users = 100;
  spec.num_items = 200;
  spec.mean_user_degree = 15;
  spec.min_user_degree = 8;
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  for (UserId u = 0; u < data->dataset.num_users(); ++u) {
    EXPECT_GE(data->dataset.UserDegree(u), 8) << "user " << u;
  }
}

TEST(GeneratorTest, DegreesRespectMaxCap) {
  SyntheticSpec spec;
  spec.num_users = 100;
  spec.num_items = 300;
  spec.mean_user_degree = 30;
  spec.max_user_degree = 60;
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  for (UserId u = 0; u < data->dataset.num_users(); ++u) {
    EXPECT_LE(data->dataset.UserDegree(u), 60);
  }
}

TEST(GeneratorTest, RatingsInOneToFive) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.03));
  ASSERT_TRUE(data.ok());
  for (const auto& r : data->dataset.ToRatingList()) {
    EXPECT_GE(r.value, 1.0f);
    EXPECT_LE(r.value, 5.0f);
    EXPECT_EQ(r.value, std::round(r.value));  // Integer stars.
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  const SyntheticSpec spec = SyntheticSpec::MovieLensLike(0.02);
  auto d1 = GenerateSyntheticData(spec);
  auto d2 = GenerateSyntheticData(spec);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->dataset.num_ratings(), d2->dataset.num_ratings());
  const auto l1 = d1->dataset.ToRatingList();
  const auto l2 = d2->dataset.ToRatingList();
  for (size_t k = 0; k < l1.size(); ++k) {
    EXPECT_EQ(l1[k].user, l2[k].user);
    EXPECT_EQ(l1[k].item, l2[k].item);
    EXPECT_EQ(l1[k].value, l2[k].value);
  }
}

TEST(GeneratorTest, MetadataPopulated) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.02));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  EXPECT_EQ(d.item_labels.size(), static_cast<size_t>(d.num_items()));
  EXPECT_EQ(d.item_genres.size(), static_cast<size_t>(d.num_items()));
  EXPECT_EQ(d.item_categories.size(), static_cast<size_t>(d.num_items()));
  EXPECT_EQ(d.user_genre_prefs.size(),
            static_cast<size_t>(d.num_users()) * d.num_genres);
  for (int32_t g : d.item_genres) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, d.num_genres);
  }
  for (int32_t c : d.item_categories) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, data->ontology.num_leaves());
  }
}

TEST(GeneratorTest, UserPrefsAreDistributions) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.02));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  for (UserId u = 0; u < d.num_users(); ++u) {
    double sum = 0.0;
    for (int g = 0; g < d.num_genres; ++g) {
      const double p = d.user_genre_prefs[u * d.num_genres + g];
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GeneratorTest, PopularityIsHeavyTailed) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.15));
  ASSERT_TRUE(data.ok());
  const LongTailStats stats = ComputeLongTailStats(data->dataset);
  // The §5.1.2 calibration target: roughly two-thirds of items form the
  // 20%-of-ratings tail. Allow a generous band.
  EXPECT_GT(stats.tail_item_fraction, 0.45);
  EXPECT_LT(stats.tail_item_fraction, 0.85);
  EXPECT_GT(stats.gini, 0.4);  // Clearly concentrated, not uniform.
}

TEST(GeneratorTest, DoubanLikeIsSparserThanMovieLensLike) {
  auto ml = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.05));
  auto db = GenerateSyntheticData(SyntheticSpec::DoubanLike(0.004));
  ASSERT_TRUE(ml.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_LT(db->dataset.Density(), ml->dataset.Density());
}

TEST(GeneratorTest, CategoriesAlignWithGenres) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.02));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  // An item's ontology leaf must sit under its genre's top category.
  for (ItemId i = 0; i < d.num_items(); ++i) {
    const auto& path = data->ontology.LeafPath(d.item_categories[i]);
    ASSERT_FALSE(path.empty());
    const auto leaves = data->ontology.LeavesUnderTop(d.item_genres[i]);
    EXPECT_TRUE(std::find(leaves.begin(), leaves.end(),
                          d.item_categories[i]) != leaves.end());
  }
}

TEST(GeneratorTest, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.num_users = 0;
  EXPECT_FALSE(GenerateSyntheticData(spec).ok());
  spec = SyntheticSpec();
  spec.num_genres = 0;
  EXPECT_FALSE(GenerateSyntheticData(spec).ok());
  spec = SyntheticSpec();
  spec.min_user_degree = 50;
  spec.num_items = 20;
  EXPECT_FALSE(GenerateSyntheticData(spec).ok());
}

TEST(GeneratorTest, HighAffinityUsersRateTheirGenreHighly) {
  SyntheticSpec spec;
  spec.num_users = 80;
  spec.num_items = 100;
  spec.num_genres = 4;
  spec.mean_user_degree = 25;
  spec.min_user_degree = 10;
  spec.genre_affinity = 0.9;
  spec.dirichlet_alpha = 0.1;
  spec.seed = 7;
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  // Average rating on items in the user's argmax genre should exceed the
  // average rating elsewhere.
  double fav_sum = 0.0;
  int64_t fav_n = 0;
  double other_sum = 0.0;
  int64_t other_n = 0;
  for (UserId u = 0; u < d.num_users(); ++u) {
    const double* theta = &d.user_genre_prefs[u * d.num_genres];
    int fav = 0;
    for (int g = 1; g < d.num_genres; ++g) {
      if (theta[g] > theta[fav]) fav = g;
    }
    const auto items = d.UserItems(u);
    const auto values = d.UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      if (d.item_genres[items[k]] == fav) {
        fav_sum += values[k];
        ++fav_n;
      } else {
        other_sum += values[k];
        ++other_n;
      }
    }
  }
  ASSERT_GT(fav_n, 0);
  ASSERT_GT(other_n, 0);
  EXPECT_GT(fav_sum / fav_n, other_sum / other_n + 0.5);
}

}  // namespace
}  // namespace longtail
