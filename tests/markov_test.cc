#include "graph/markov.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;
using testing::MakePathDataset;
using testing::MakeStarDataset;

// ---------------------------------------------------------------- Exact

TEST(AbsorbingTimeExactTest, SingleEdgeGraph) {
  // u — i, absorb at u: AT(i) = 1.
  auto d = Dataset::Create(1, 1, {{0, 0, 3.0f}});
  ASSERT_TRUE(d.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  std::vector<bool> absorbing = {true, false};
  auto at = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(at.ok());
  EXPECT_NEAR((*at)[1], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ((*at)[0], 0.0);
}

TEST(AbsorbingTimeExactTest, StarClosedForm) {
  // Star center u with d items, absorb at item 0:
  // E[center] = 2d − 1, E[other item] = 2d.
  for (int deg : {2, 3, 5, 10}) {
    BipartiteGraph g = BipartiteGraph::FromDataset(MakeStarDataset(deg));
    std::vector<bool> absorbing(g.num_nodes(), false);
    absorbing[g.ItemNode(0)] = true;
    auto at = AbsorbingTimeExact(g, absorbing);
    ASSERT_TRUE(at.ok());
    EXPECT_NEAR((*at)[g.UserNode(0)], 2.0 * deg - 1.0, 1e-8) << deg;
    if (deg > 1) {
      EXPECT_NEAR((*at)[g.ItemNode(1)], 2.0 * deg, 1e-8) << deg;
    }
  }
}

TEST(AbsorbingTimeExactTest, PathGamblersRuin) {
  // Path u0-i0-u1-i1-u2 (positions 0..4), absorb at u2, reflecting at u0.
  // Classic result: E[from position k] = n² − k² with n = 4.
  BipartiteGraph g = BipartiteGraph::FromDataset(MakePathDataset(3));
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(2)] = true;
  auto at = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(at.ok());
  EXPECT_NEAR((*at)[g.UserNode(0)], 16.0, 1e-8);  // position 0
  EXPECT_NEAR((*at)[g.ItemNode(0)], 15.0, 1e-8);  // position 1
  EXPECT_NEAR((*at)[g.UserNode(1)], 12.0, 1e-8);  // position 2
  EXPECT_NEAR((*at)[g.ItemNode(1)], 7.0, 1e-8);   // position 3
}

TEST(AbsorbingTimeExactTest, WeightedTwoItemStar) {
  // u connected to i0 (w=4) and i1 (w=1); absorb at i0.
  // E[u] = (1 + p1) / p0 with p0 = 0.8 → E[u] = 1.5; E[i1] = 2.5.
  auto d = Dataset::Create(1, 2, {{0, 0, 4.0f}, {0, 1, 1.0f}});
  ASSERT_TRUE(d.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.ItemNode(0)] = true;
  auto at = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(at.ok());
  EXPECT_NEAR((*at)[g.UserNode(0)], 1.5, 1e-9);
  EXPECT_NEAR((*at)[g.ItemNode(1)], 2.5, 1e-9);
}

TEST(AbsorbingTimeExactTest, UnreachableNodesAreInfinite) {
  // Two disconnected components; absorbing set in one of them.
  auto d = Dataset::Create(2, 2, {{0, 0, 1.0f}, {1, 1, 1.0f}});
  ASSERT_TRUE(d.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(0)] = true;
  auto at = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(at.ok());
  EXPECT_TRUE(std::isinf((*at)[g.UserNode(1)]));
  EXPECT_TRUE(std::isinf((*at)[g.ItemNode(1)]));
  EXPECT_NEAR((*at)[g.ItemNode(0)], 1.0, 1e-9);
}

TEST(AbsorbingTimeExactTest, EmptyAbsorbingSetRejected) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeStarDataset(2));
  std::vector<bool> absorbing(g.num_nodes(), false);
  EXPECT_FALSE(AbsorbingTimeExact(g, absorbing).ok());
}

// ------------------------------------------------------------- Figure 2

TEST(HittingTimeTest, Figure2ReproducesPaperRanking) {
  // §3.3: H(U5|M4)=17.7 < H(U5|M1)=19.6 < H(U5|M5)=20.2 < H(U5|M6)=20.3.
  // Our rating-weighted walk reproduces the ordering exactly; absolute
  // values land within ~5% (the paper's normalization is unspecified).
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  auto h = HittingTimeExact(g, g.UserNode(testing::kU5));
  ASSERT_TRUE(h.ok());
  const double m4 = (*h)[g.ItemNode(testing::kM4)];
  const double m1 = (*h)[g.ItemNode(testing::kM1)];
  const double m5 = (*h)[g.ItemNode(testing::kM5)];
  const double m6 = (*h)[g.ItemNode(testing::kM6)];
  // Paper's ranking: the niche movie M4 wins.
  EXPECT_LT(m4, m1);
  EXPECT_LT(m1, m5);
  EXPECT_LT(m5, m6);
  // Paper's values within 6% relative tolerance.
  EXPECT_NEAR(m4, 17.7, 0.06 * 17.7);
  EXPECT_NEAR(m1, 19.6, 0.06 * 19.6);
  EXPECT_NEAR(m5, 20.2, 0.06 * 20.2);
  EXPECT_NEAR(m6, 20.3, 0.06 * 20.3);
}

TEST(HittingTimeTest, RatedItemsCloserThanPaperExample) {
  // Items U5 actually rated should have the smallest hitting times of all.
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  auto h = HittingTimeExact(g, g.UserNode(testing::kU5));
  ASSERT_TRUE(h.ok());
  const double m2 = (*h)[g.ItemNode(testing::kM2)];
  const double m3 = (*h)[g.ItemNode(testing::kM3)];
  const double m4 = (*h)[g.ItemNode(testing::kM4)];
  EXPECT_LT(m2, m4);
  EXPECT_LT(m3, m4);
}

TEST(HittingTimeTest, TargetOutOfRangeRejected) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeStarDataset(2));
  EXPECT_FALSE(HittingTimeExact(g, -1).ok());
  EXPECT_FALSE(HittingTimeExact(g, g.num_nodes()).ok());
}

// ------------------------------------------------------------ Truncated

TEST(AbsorbingTimeTruncatedTest, AbsorbingStaysZero) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.ItemNode(testing::kM2)] = true;
  absorbing[g.ItemNode(testing::kM3)] = true;
  const auto at = AbsorbingTimeTruncated(g, absorbing, 20);
  EXPECT_DOUBLE_EQ(at[g.ItemNode(testing::kM2)], 0.0);
  EXPECT_DOUBLE_EQ(at[g.ItemNode(testing::kM3)], 0.0);
}

TEST(AbsorbingTimeTruncatedTest, MonotoneNondecreasingInTau) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(testing::kU5)] = true;
  std::vector<double> prev(g.num_nodes(), 0.0);
  for (int tau : {1, 2, 4, 8, 16, 32}) {
    const auto at = AbsorbingTimeTruncated(g, absorbing, tau);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_GE(at[v], prev[v] - 1e-12);
    }
    prev = at;
  }
}

TEST(AbsorbingTimeTruncatedTest, BoundedByAndConvergesToExact) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(testing::kU5)] = true;
  auto exact = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(exact.ok());
  const auto truncated = AbsorbingTimeTruncated(g, absorbing, 2000);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(truncated[v], (*exact)[v] + 1e-9);
    EXPECT_NEAR(truncated[v], (*exact)[v], 1e-3 * std::max(1.0, (*exact)[v]));
  }
}

TEST(AbsorbingTimeTruncatedTest, Tau15PreservesExactRanking) {
  // §4.1: "when we use 15 iterations, it already achieves almost the same
  // results to the exact solution" — check the induced item ranking.
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(testing::kU5)] = true;
  auto exact = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(exact.ok());
  const auto truncated = AbsorbingTimeTruncated(g, absorbing, 15);
  // Compare pairwise orderings over the unrated items (M1, M4, M5, M6).
  const std::vector<ItemId> items = {testing::kM1, testing::kM4, testing::kM5,
                                     testing::kM6};
  for (ItemId a : items) {
    for (ItemId b : items) {
      if (a == b) continue;
      const bool exact_less =
          (*exact)[g.ItemNode(a)] < (*exact)[g.ItemNode(b)];
      const bool trunc_less =
          truncated[g.ItemNode(a)] < truncated[g.ItemNode(b)];
      EXPECT_EQ(exact_less, trunc_less)
          << "ranking flip between items " << a << " and " << b;
    }
  }
}

TEST(AbsorbingTimeTruncatedTest, ZeroIterationsIsZero) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeStarDataset(3));
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(0)] = true;
  const auto at = AbsorbingTimeTruncated(g, absorbing, 0);
  for (double v : at) EXPECT_DOUBLE_EQ(v, 0.0);
}

// -------------------------------------------------------- Absorbing cost

TEST(AbsorbingCostTest, UnitCostsEqualAbsorbingTime) {
  // Eq. 8: AC with c ≡ 1 is exactly AT.
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.ItemNode(testing::kM2)] = true;
  const std::vector<double> unit(g.num_nodes(), 1.0);
  const auto at = AbsorbingTimeTruncated(g, absorbing, 25);
  const auto ac = AbsorbingValueTruncated(g, absorbing, unit, 25);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(at[v], ac[v]);
  }
}

TEST(AbsorbingCostTest, ScalingCostsScalesValues) {
  // With node_cost ≡ c, the fixed point is c · AT.
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(testing::kU5)] = true;
  auto at = AbsorbingValueExact(g, absorbing,
                                std::vector<double>(g.num_nodes(), 1.0));
  auto scaled = AbsorbingValueExact(g, absorbing,
                                    std::vector<double>(g.num_nodes(), 2.5));
  ASSERT_TRUE(at.ok());
  ASSERT_TRUE(scaled.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (std::isinf((*at)[v])) continue;
    EXPECT_NEAR((*scaled)[v], 2.5 * (*at)[v], 1e-6);
  }
}

TEST(EntropyNodeCostsTest, UserNodesGetConstant) {
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<double> entropy(d.num_users(), 0.7);
  const auto costs = EntropyNodeCosts(g, entropy, 3.0);
  for (UserId u = 0; u < d.num_users(); ++u) {
    EXPECT_DOUBLE_EQ(costs[g.UserNode(u)], 3.0);
  }
  // With uniform entropy 0.7 the expected item cost is exactly 0.7.
  for (ItemId i = 0; i < d.num_items(); ++i) {
    EXPECT_NEAR(costs[g.ItemNode(i)], 0.7, 1e-12);
  }
}

TEST(EntropyNodeCostsTest, ItemCostIsExpectedNeighborEntropy) {
  // M3's raters: U2 (w5), U3 (w4), U4 (w5), U5 (w5); give them distinct
  // entropies and verify the weighted average.
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<double> entropy = {0.1, 0.2, 0.3, 0.4, 0.5};
  const auto costs = EntropyNodeCosts(g, entropy, 1.0);
  const double expected =
      (5 * 0.2 + 4 * 0.3 + 5 * 0.4 + 5 * 0.5) / (5.0 + 4.0 + 5.0 + 5.0);
  EXPECT_NEAR(costs[g.ItemNode(testing::kM3)], expected, 1e-12);
}

}  // namespace
}  // namespace longtail
