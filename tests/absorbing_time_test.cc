#include "core/absorbing_time.h"

#include <gtest/gtest.h>

#include "graph/markov.h"
#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

GraphWalkOptions ExactOptions() {
  GraphWalkOptions options;
  options.exact = true;
  options.max_subgraph_items = 0;
  return options;
}

TEST(AbsorbingTimeRecommenderTest, Figure2PrefersNicheTasteMatch) {
  // With S_q = {M2, M3} absorbing, the Action-niche M4 (adjacent to U4 who
  // rated M3) should beat the popular drama-ish M5/M6.
  Dataset d = MakeFigure2Dataset();
  AbsorbingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 4u);
  EXPECT_EQ((*top)[0].item, testing::kM4);
}

TEST(AbsorbingTimeRecommenderTest, MatchesManualAbsorbingTime) {
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.ItemNode(testing::kM2)] = true;
  absorbing[g.ItemNode(testing::kM3)] = true;
  auto manual = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(manual.ok());

  AbsorbingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM1, testing::kM4, testing::kM5,
                                     testing::kM6};
  auto scores = rec.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(scores.ok());
  for (size_t k = 0; k < items.size(); ++k) {
    EXPECT_NEAR((*scores)[k], -(*manual)[g.ItemNode(items[k])], 1e-9);
  }
}

TEST(AbsorbingTimeRecommenderTest, SingletonSetEqualsHittingTimeToItem) {
  // Def. 3: AT(S|i) with S = {j} equals H(j|i). Use a user with 1 rating.
  auto d = Dataset::Create(
      3, 3,
      {{0, 0, 5.0f}, {1, 0, 4.0f}, {1, 1, 3.0f}, {2, 1, 5.0f}, {2, 2, 2.0f}});
  ASSERT_TRUE(d.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  auto hit = HittingTimeExact(g, g.ItemNode(0));
  ASSERT_TRUE(hit.ok());

  AbsorbingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(*d).ok());
  const std::vector<ItemId> items = {1, 2};
  auto scores = rec.ScoreItems(0, items);  // user 0 rated only item 0
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR((*scores)[0], -(*hit)[g.ItemNode(1)], 1e-9);
  EXPECT_NEAR((*scores)[1], -(*hit)[g.ItemNode(2)], 1e-9);
}

TEST(AbsorbingTimeRecommenderTest, TruncatedRankingStableAtTau15) {
  Dataset d = MakeFigure2Dataset();
  GraphWalkOptions options;
  options.iterations = 15;
  options.max_subgraph_items = 0;
  AbsorbingTimeRecommender truncated(options);
  AbsorbingTimeRecommender exact(ExactOptions());
  ASSERT_TRUE(truncated.Fit(d).ok());
  ASSERT_TRUE(exact.Fit(d).ok());
  for (UserId u = 0; u < d.num_users(); ++u) {
    auto a = exact.RecommendTopK(u, 3);
    auto b = truncated.RecommendTopK(u, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t k = 0; k < a->size(); ++k) {
      EXPECT_EQ((*a)[k].item, (*b)[k].item) << "user " << u << " pos " << k;
    }
  }
}

TEST(AbsorbingTimeRecommenderTest, SubgraphCapStillServesQueries) {
  Dataset d = MakeFigure2Dataset();
  GraphWalkOptions options;
  options.max_subgraph_items = 3;  // tiny µ
  AbsorbingTimeRecommender rec(options);
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  EXPECT_GE(top->size(), 1u);
}

TEST(AbsorbingTimeRecommenderTest, ItemsOutsideSubgraphGetFloorScore) {
  // Disconnect M6's component from U5 by querying a user in a 2-node
  // component.
  auto d = Dataset::Create(2, 2, {{0, 0, 5.0f}, {1, 1, 5.0f}});
  ASSERT_TRUE(d.ok());
  AbsorbingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(*d).ok());
  const std::vector<ItemId> items = {1};
  auto scores = rec.ScoreItems(0, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ((*scores)[0], kUnreachableScore);
}

TEST(AbsorbingTimeRecommenderTest, RatedItemsNeverRecommended) {
  Dataset d = MakeFigure2Dataset();
  AbsorbingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  for (UserId u = 0; u < d.num_users(); ++u) {
    auto top = rec.RecommendTopK(u, 6);
    ASSERT_TRUE(top.ok());
    for (const ScoredItem& si : *top) {
      EXPECT_FALSE(d.HasRating(u, si.item)) << "user " << u;
    }
  }
}

TEST(AbsorbingTimeRecommenderTest, ColdStartFails) {
  auto d = Dataset::Create(2, 2, {{0, 0, 5.0f}, {0, 1, 4.0f}});
  ASSERT_TRUE(d.ok());
  AbsorbingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  EXPECT_FALSE(rec.RecommendTopK(1, 2).ok());
}

TEST(AbsorbingTimeRecommenderTest, NameIsAT) {
  AbsorbingTimeRecommender rec;
  EXPECT_EQ(rec.name(), "AT");
}

}  // namespace
}  // namespace longtail
