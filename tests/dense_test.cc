#include "linalg/dense.h"

#include <gtest/gtest.h>

#include <cmath>

namespace longtail {
namespace {

TEST(DenseMatrixTest, ConstructionAndIndexing) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 7.0);
}

TEST(DenseMatrixTest, MultiplyKnownProduct) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  DenseMatrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  DenseMatrix c = DenseMatrix::Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(DenseMatrixTest, GramMatchesExplicitProduct) {
  DenseMatrix a(3, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 0;
  a(1, 1) = 1;
  a(2, 0) = 4;
  a(2, 1) = 3;
  DenseMatrix g = DenseMatrix::Gram(a);
  DenseMatrix expected = DenseMatrix::Multiply(a.Transposed(), a);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
}

TEST(DenseMatrixTest, Transposed) {
  DenseMatrix a(2, 3);
  int v = 0;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = ++v;
  }
  DenseMatrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t(c, r), a(r, c));
  }
}

TEST(VectorOpsTest, DotNormAxpyScale) {
  std::vector<double> a = {1.0, 2.0, 2.0};
  std::vector<double> b = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 3.0);
  Axpy(2.0, b, a);  // a = {5, 2, 4}
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[2], 4.0);
  Scale(0.5, a);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
}

TEST(VectorOpsTest, NormalizeUnitAndZero) {
  std::vector<double> v = {3.0, 4.0};
  const double n = Normalize(v);
  EXPECT_DOUBLE_EQ(n, 5.0);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-15);
  std::vector<double> z = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(Normalize(z), 0.0);
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(VectorOpsTest, NormalizeL1) {
  std::vector<double> v = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(NormalizeL1(v), 4.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(QrTest, ProducesOrthonormalColumns) {
  DenseMatrix a(5, 3);
  uint64_t state = 99;
  for (auto& v : a.data()) {
    state = state * 6364136223846793005ULL + 1;
    v = static_cast<double>(state >> 33) / (1ULL << 31) - 0.5;
  }
  DenseMatrix original = a;
  DenseMatrix r = QrInPlace(&a);
  // Columns orthonormal.
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < 5; ++k) dot += a(k, i) * a(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
  // Q R reproduces the original.
  DenseMatrix qr = DenseMatrix::Multiply(a, r);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(qr(i, j), original(i, j), 1e-10);
    }
  }
}

TEST(QrTest, RankDeficientColumnZeroed) {
  DenseMatrix a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 1;
  a(2, 0) = 0;
  // Second column is a multiple of the first.
  a(0, 1) = 2;
  a(1, 1) = 2;
  a(2, 1) = 0;
  QrInPlace(&a);
  double norm1 = 0.0;
  for (size_t k = 0; k < 3; ++k) norm1 += a(k, 1) * a(k, 1);
  EXPECT_NEAR(norm1, 0.0, 1e-20);
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  DenseMatrix a(3, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  std::vector<double> values;
  DenseMatrix vectors;
  SymmetricEigen(a, &values, &vectors);
  EXPECT_NEAR(values[0], 5.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
  EXPECT_NEAR(values[2], 1.0, 1e-12);
}

TEST(SymmetricEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  std::vector<double> values;
  DenseMatrix vectors;
  SymmetricEigen(a, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/√2 up to sign.
  EXPECT_NEAR(std::abs(vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(vectors(0, 0), vectors(1, 0), 1e-8);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  DenseMatrix a(4, 4, 0.0);
  uint64_t state = 5;
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i; j < 4; ++j) {
      state = state * 6364136223846793005ULL + 1;
      const double v = static_cast<double>(state >> 33) / (1ULL << 31) - 0.5;
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  std::vector<double> values;
  DenseMatrix vectors;
  SymmetricEigen(a, &values, &vectors);
  // A ≈ V diag(λ) Vᵀ.
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < 4; ++k) {
        sum += vectors(i, k) * values[k] * vectors(j, k);
      }
      EXPECT_NEAR(sum, a(i, j), 1e-9);
    }
  }
}

}  // namespace
}  // namespace longtail
