#include "util/status.h"

#include <gtest/gtest.h>

namespace longtail {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesMapToDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  EXPECT_EQ(r->size(), 3u);
}

Status FailsAt(int depth) {
  if (depth == 0) return Status::Internal("bottom");
  LT_RETURN_IF_ERROR(FailsAt(depth - 1));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsAt(3).code(), StatusCode::kInternal);
  EXPECT_TRUE(FailsAt(0).code() == StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  LT_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(StatusMacrosTest, AssignOrReturnUnwraps) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = Doubled(Status::OutOfRange("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, DiesOnBadAccess) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH(r.value(), "errored Result");
}

}  // namespace
}  // namespace longtail
