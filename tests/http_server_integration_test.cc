// End-to-end socket integration for the HTTP serving front: a real
// ServingEngine cold-started from a checkpoint directory, a real
// HttpServer on an ephemeral loopback port, and real TCP clients.
//
// Contracts locked down here:
//  1. Parity — top-k items and candidate scores served over HTTP by N
//     concurrent keep-alive clients are bit-identical to a direct
//     QueryBatch against the same checkpoint-loaded model. JSON is part
//     of the serving path, so this also pins the writer's shortest-round-
//     trip double formatting end to end.
//  2. Typed failure taxonomy on the wire — a full engine queue answers
//     the 429 ResourceExhausted envelope without blocking; a dead-on-
//     arrival deadline (deadline_ms: 0) answers the 504 DeadlineExceeded
//     envelope; an unknown model 404; a malformed body 400.
//  3. /metrics under traffic parses with the Prometheus text checker and
//     carries the longtail_http_* request/response/latency series next to
//     the engine series.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "http/http_client.h"
#include "http/http_json.h"
#include "http/http_server.h"
#include "http/serving_http.h"
#include "serving/model_registry.h"
#include "serving/serving_engine.h"
#include "prometheus_text_checker.h"

namespace longtail {
namespace {

namespace fs = std::filesystem;

class HttpServerIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 80;
    spec.num_items = 60;
    spec.mean_user_degree = 8;
    spec.min_user_degree = 3;
    spec.num_genres = 4;
    spec.seed = 90125;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);

    // Fit once, checkpoint to disk: the server under test cold-starts
    // from this directory, never from the fitted instances.
    ckpt_dir_ = new fs::path(fs::temp_directory_path() /
                             "longtail_http_integration_ckpts");
    fs::remove_all(*ckpt_dir_);
    fs::create_directories(*ckpt_dir_);
    {
      AbsorbingTimeRecommender at;
      ASSERT_TRUE(at.Fit(*data_).ok());
      ASSERT_TRUE(
          SaveModelCheckpoint(at, (*ckpt_dir_ / "at.ckpt").string()).ok());
      HittingTimeRecommender ht;
      ASSERT_TRUE(ht.Fit(*data_).ok());
      ASSERT_TRUE(
          SaveModelCheckpoint(ht, (*ckpt_dir_ / "ht.ckpt").string()).ok());
    }
  }
  static void TearDownTestSuite() {
    fs::remove_all(*ckpt_dir_);
    delete ckpt_dir_;
    ckpt_dir_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static Dataset* data_;
  static fs::path* ckpt_dir_;
};

Dataset* HttpServerIntegrationTest::data_ = nullptr;
fs::path* HttpServerIntegrationTest::ckpt_dir_ = nullptr;

/// Parses a response body, failing the test on malformed JSON.
JsonValue MustParse(const std::string& body) {
  auto parsed = ParseJson(body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << body;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

/// Asserts `body` is the error envelope and returns its code name.
std::string EnvelopeCode(const std::string& body, int expected_http) {
  const JsonValue root = MustParse(body);
  const JsonValue* error = root.Find("error");
  if (error == nullptr) {
    ADD_FAILURE() << "no error envelope in " << body;
    return "";
  }
  EXPECT_EQ(error->Find("http_status")->number_value(),
            static_cast<double>(expected_http))
      << body;
  EXPECT_FALSE(error->Find("message")->string_value().empty());
  return error->Find("code")->string_value();
}

TEST_F(HttpServerIntegrationTest, ConcurrentHttpTrafficIsBitIdenticalToDirectQueryBatch) {
  // The reference: a second, independent load of the same checkpoint,
  // queried directly (single-threaded) — the engine/HTTP stack must not
  // perturb a single bit relative to this.
  auto reference =
      LoadModelCheckpoint((*ckpt_dir_ / "at.ckpt").string(), *data_);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const std::vector<ItemId> candidates = {0, 5, 11, 17, 23, 42};
  const int kUsers = 24;
  const int kTopK = 8;
  std::vector<UserQuery> queries;
  for (UserId u = 0; u < kUsers; ++u) {
    queries.push_back({u, kTopK, candidates});
  }
  BatchOptions direct;
  direct.num_threads = 1;
  const std::vector<UserQueryResult> expected =
      reference.value()->QueryBatch(queries, direct);

  ServingEngine engine;
  auto loaded = LoadCheckpointDirIntoEngine(ckpt_dir_->string(), *data_,
                                            &engine);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  const std::string model = "AT";
  ASSERT_TRUE(engine.HasModel(model));

  ServingHttpFrontOptions front_options;
  front_options.ready_at_start = true;
  ServingHttpFront front(&engine, front_options);
  HttpServerOptions server_options;
  server_options.num_workers = 6;
  server_options.metrics = engine.metrics();
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); },
      server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // N concurrent clients, each walking every user over one keep-alive
  // connection: recommend + score per user.
  const int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (UserId u = 0; u < kUsers; ++u) {
        // ---- /v1/recommend
        std::string body = "{\"model\":\"" + model + "\",\"user\":" +
                           std::to_string(u) +
                           ",\"top_k\":" + std::to_string(kTopK) + "}";
        auto response = client.Request("POST", "/v1/recommend", body);
        if (!response.ok() || response.value().status != 200) {
          ADD_FAILURE() << "client " << c << " user " << u << ": "
                        << (response.ok()
                                ? std::to_string(response.value().status) +
                                      " " + response.value().body
                                : response.status().ToString());
          failures.fetch_add(1);
          return;
        }
        const JsonValue rec = MustParse(response.value().body);
        const JsonValue* items = rec.Find("items");
        ASSERT_NE(items, nullptr);
        const UserQueryResult& want = expected[u];
        ASSERT_EQ(items->items().size(), want.top_k.size())
            << "user " << u;
        for (size_t k = 0; k < want.top_k.size(); ++k) {
          const JsonValue& entry = items->items()[k];
          EXPECT_EQ(entry.Find("item")->number_value(),
                    static_cast<double>(want.top_k[k].item))
              << "user " << u << " pos " << k;
          // Bit-identical: the JSON writer emits shortest-round-trip
          // doubles, so equality here is exact double equality.
          EXPECT_EQ(entry.Find("score")->number_value(),
                    want.top_k[k].score)
              << "user " << u << " pos " << k;
        }

        // ---- /v1/score
        std::string ids;
        for (const ItemId id : candidates) {
          if (!ids.empty()) ids += ",";
          ids += std::to_string(id);
        }
        body = "{\"model\":\"" + model + "\",\"user\":" + std::to_string(u) +
               ",\"items\":[" + ids + "]}";
        response = client.Request("POST", "/v1/score", body);
        if (!response.ok() || response.value().status != 200) {
          ADD_FAILURE() << "score user " << u;
          failures.fetch_add(1);
          return;
        }
        const JsonValue sc = MustParse(response.value().body);
        const JsonValue* scores = sc.Find("scores");
        ASSERT_NE(scores, nullptr);
        ASSERT_EQ(scores->items().size(), want.scores.size());
        for (size_t k = 0; k < want.scores.size(); ++k) {
          EXPECT_EQ(scores->items()[k].number_value(), want.scores[k])
              << "user " << u << " candidate " << k;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // ---- /metrics after the traffic: well-formed exposition text carrying
  // the request-level series (and the engine series beside them).
  HttpClient scraper;
  ASSERT_TRUE(scraper.Connect("127.0.0.1", server.port()).ok());
  auto metrics = scraper.Request("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  const std::string* type = metrics.value().FindHeader("content-type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(*type, "text/plain; version=0.0.4");
  std::string checker_error;
  EXPECT_TRUE(CheckPrometheusText(metrics.value().body, &checker_error))
      << checker_error;
  const std::string& text = metrics.value().body;
  for (const char* series :
       {"longtail_http_requests_total", "longtail_http_responses_total",
        "longtail_http_request_duration_seconds_bucket",
        "longtail_http_connections_total",
        "longtail_engine_requests_submitted_total"}) {
    EXPECT_NE(text.find(series), std::string::npos)
        << "missing " << series;
  }
  EXPECT_NE(text.find("route=\"POST /v1/recommend\""), std::string::npos);
  EXPECT_NE(text.find("class=\"2xx\""), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST_F(HttpServerIntegrationTest, QueueFullAnswers429EnvelopeWithoutBlocking) {
  // Dispatcher-less engine with a tiny queue that the test fills directly;
  // the HTTP request then hits admission control and must fail fast.
  ServingEngineOptions engine_options;
  engine_options.max_queue_depth = 2;
  engine_options.start_dispatcher = false;
  ServingEngine engine(engine_options);
  auto loaded =
      LoadCheckpointDirIntoEngine(ckpt_dir_->string(), *data_, &engine);
  ASSERT_TRUE(loaded.ok());

  // Fill the queue (futures intentionally left pending — no pump runs).
  ServeRequest filler;
  filler.user = 0;
  filler.top_k = 3;
  auto f1 = engine.Submit("AT", filler);
  auto f2 = engine.Submit("AT", filler);

  ServingHttpFrontOptions front_options;
  front_options.ready_at_start = true;
  ServingHttpFront front(&engine, front_options);
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto response = client.Request(
      "POST", "/v1/recommend",
      "{\"model\":\"AT\",\"user\":1,\"top_k\":3}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 429);
  EXPECT_EQ(EnvelopeCode(response.value().body, 429), "ResourceExhausted");

  server.Stop();
  // Drain the queue so the filler futures resolve before teardown.
  engine.PumpUntilIdle();
  f1.get();
  f2.get();
}

TEST_F(HttpServerIntegrationTest, DeadOnArrivalDeadlineAnswers504Envelope) {
  ServingEngine engine;  // real dispatcher, 1 tick = 1 ms
  auto loaded =
      LoadCheckpointDirIntoEngine(ckpt_dir_->string(), *data_, &engine);
  ASSERT_TRUE(loaded.ok());

  ServingHttpFrontOptions front_options;
  front_options.ready_at_start = true;
  ServingHttpFront front(&engine, front_options);
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // deadline_ms: 0 is the documented "already-expired budget": the front
  // answers the DeadlineExceeded envelope deterministically, before the
  // request can occupy the engine queue.
  auto response = client.Request(
      "POST", "/v1/recommend",
      "{\"model\":\"AT\",\"user\":2,\"top_k\":3,\"deadline_ms\":0}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 504);
  EXPECT_EQ(EnvelopeCode(response.value().body, 504), "DeadlineExceeded");

  server.Stop();
}

TEST_F(HttpServerIntegrationTest, BadRequestsGetTypedEnvelopes) {
  ServingEngine engine;
  auto loaded =
      LoadCheckpointDirIntoEngine(ckpt_dir_->string(), *data_, &engine);
  ASSERT_TRUE(loaded.ok());
  ServingHttpFrontOptions front_options;
  front_options.ready_at_start = true;
  front_options.max_top_k = 16;
  ServingHttpFront front(&engine, front_options);
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  struct Case {
    const char* body;
    int http;
    const char* code;
  };
  const Case cases[] = {
      {"not json at all", 400, "InvalidArgument"},
      {"{\"user\":1,\"top_k\":3}", 400, "InvalidArgument"},  // no model
      {"{\"model\":\"AT\",\"top_k\":3}", 400, "InvalidArgument"},  // no user
      {"{\"model\":\"AT\",\"user\":1}", 400, "InvalidArgument"},  // no top_k
      {"{\"model\":\"AT\",\"user\":1,\"top_k\":0}", 400, "InvalidArgument"},
      {"{\"model\":\"AT\",\"user\":1,\"top_k\":17}", 400, "InvalidArgument"},
      {"{\"model\":\"AT\",\"user\":1,\"top_k\":3,\"deadline_ms\":-5}", 400,
       "InvalidArgument"},
      {"{\"model\":\"NoSuchModel\",\"user\":1,\"top_k\":3}", 404, "NotFound"},
  };
  for (const Case& c : cases) {
    auto response = client.Request("POST", "/v1/recommend", c.body);
    ASSERT_TRUE(response.ok()) << c.body;
    EXPECT_EQ(response.value().status, c.http) << c.body;
    EXPECT_EQ(EnvelopeCode(response.value().body, c.http), c.code) << c.body;
  }

  // /v1/score: empty items array is invalid.
  auto response = client.Request(
      "POST", "/v1/score", "{\"model\":\"AT\",\"user\":1,\"items\":[]}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400);

  // Unknown path -> 404 envelope; wrong method -> 405 with Allow.
  response = client.Request("GET", "/v2/recommend");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
  response = client.Request("GET", "/v1/recommend");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 405);
  const std::string* allow = response.value().FindHeader("allow");
  ASSERT_NE(allow, nullptr);
  EXPECT_EQ(*allow, "POST");

  server.Stop();
}

TEST_F(HttpServerIntegrationTest, PipelinedRequestsAnswerInOrder) {
  ServingEngine engine;
  auto loaded =
      LoadCheckpointDirIntoEngine(ckpt_dir_->string(), *data_, &engine);
  ASSERT_TRUE(loaded.ok());
  ServingHttpFrontOptions front_options;
  front_options.ready_at_start = true;
  ServingHttpFront front(&engine, front_options);
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Two requests in one write; the server must answer both, in order.
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /readyz HTTP/1.1\r\n\r\n")
                  .ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status, 200);
  EXPECT_NE(first.value().body.find("\"ok\""), std::string::npos);
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().status, 200);
  EXPECT_NE(second.value().body.find("\"ready\""), std::string::npos);

  server.Stop();
}

}  // namespace
}  // namespace longtail
