#include "eval/user_study.h"

#include <gtest/gtest.h>

#include "baselines/popularity.h"
#include "core/absorbing_time.h"
#include "data/generator.h"
#include "test_util.h"

namespace longtail {
namespace {

class UserStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.04));
    ASSERT_TRUE(data.ok());
    corpus_ = new Dataset(std::move(data).value().dataset);
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static Dataset* corpus_;
};

Dataset* UserStudyTest::corpus_ = nullptr;

UserStudyOptions FastStudy() {
  UserStudyOptions options;
  options.num_evaluators = 20;
  options.k = 5;
  options.min_degree = 10;
  return options;
}

TEST_F(UserStudyTest, ScoresWithinScales) {
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(*corpus_).ok());
  auto report = RunUserStudy(rec, *corpus_, FastStudy());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->preference, 1.0);
  EXPECT_LE(report->preference, 5.0);
  EXPECT_GE(report->novelty, 0.0);
  EXPECT_LE(report->novelty, 1.0);
  EXPECT_GE(report->serendipity, 1.0);
  EXPECT_LE(report->serendipity, 5.0);
  EXPECT_GE(report->score, 1.0);
  EXPECT_LE(report->score, 5.0);
  EXPECT_GT(report->items_evaluated, 0);
}

TEST_F(UserStudyTest, PopularRecommenderLacksNovelty) {
  // Table 6's mechanism: head-item recommenders are already known to
  // evaluators; the graph recommender surfaces unknown tail items.
  PopularityRecommender popular;
  ASSERT_TRUE(popular.Fit(*corpus_).ok());
  GraphWalkOptions walk;
  walk.iterations = 10;
  AbsorbingTimeRecommender at(walk);
  ASSERT_TRUE(at.Fit(*corpus_).ok());
  auto pop_report = RunUserStudy(popular, *corpus_, FastStudy());
  auto at_report = RunUserStudy(at, *corpus_, FastStudy());
  ASSERT_TRUE(pop_report.ok());
  ASSERT_TRUE(at_report.ok());
  EXPECT_GT(at_report->novelty, pop_report->novelty);
  EXPECT_GT(at_report->serendipity, pop_report->serendipity);
}

TEST_F(UserStudyTest, RequiresGroundTruthMetadata) {
  Dataset bare = testing::MakeFigure2Dataset();  // No generator metadata.
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(bare).ok());
  EXPECT_FALSE(RunUserStudy(rec, bare, FastStudy()).ok());
}

TEST_F(UserStudyTest, DeterministicForSeed) {
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(*corpus_).ok());
  auto r1 = RunUserStudy(rec, *corpus_, FastStudy());
  auto r2 = RunUserStudy(rec, *corpus_, FastStudy());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->preference, r2->preference);
  EXPECT_DOUBLE_EQ(r1->novelty, r2->novelty);
  EXPECT_DOUBLE_EQ(r1->serendipity, r2->serendipity);
  EXPECT_DOUBLE_EQ(r1->score, r2->score);
}

TEST_F(UserStudyTest, ReportNamesTheAlgorithm) {
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(*corpus_).ok());
  auto report = RunUserStudy(rec, *corpus_, FastStudy());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "MostPopular");
}

}  // namespace
}  // namespace longtail
