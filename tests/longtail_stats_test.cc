#include "data/longtail_stats.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

// Popularities: 1, 1, 1, 1, 6 → total 10; 20% budget = 2 ratings → first
// two ascending items are tail.
Dataset MakeSkewedDataset() {
  std::vector<RatingEntry> ratings;
  // Items 0..3 get one rating each; item 4 gets six.
  for (int i = 0; i < 4; ++i) ratings.push_back({i, i, 5.0f});
  for (int u = 0; u < 6; ++u) ratings.push_back({u, 4, 4.0f});
  auto d = Dataset::Create(6, 5, std::move(ratings));
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(TailItemFlagsTest, BudgetRespected) {
  Dataset d = MakeSkewedDataset();
  const auto tail = TailItemFlags(d, 0.20);
  int count = 0;
  int64_t tail_ratings = 0;
  for (ItemId i = 0; i < d.num_items(); ++i) {
    if (tail[i]) {
      ++count;
      tail_ratings += d.ItemPopularity(i);
    }
  }
  EXPECT_EQ(count, 2);        // Two 1-rating items fit in the 2-rating budget.
  EXPECT_EQ(tail_ratings, 2);
  EXPECT_FALSE(tail[4]);      // The hit item is head.
}

TEST(TailItemFlagsTest, ZeroShareGivesNoTail) {
  Dataset d = MakeSkewedDataset();
  const auto tail = TailItemFlags(d, 0.0);
  for (bool t : tail) EXPECT_FALSE(t);
}

TEST(TailItemFlagsTest, FullShareLeavesHeadOnlyWhenBoundaryCrossed) {
  Dataset d = MakeSkewedDataset();
  const auto tail = TailItemFlags(d, 1.0);
  // Budget = all ratings: every item fits.
  for (ItemId i = 0; i < d.num_items(); ++i) EXPECT_TRUE(tail[i]);
}

TEST(ComputeLongTailStatsTest, SkewedDataset) {
  Dataset d = MakeSkewedDataset();
  const LongTailStats stats = ComputeLongTailStats(d, 0.20);
  EXPECT_EQ(stats.num_items, 5);
  EXPECT_EQ(stats.total_ratings, 10);
  EXPECT_EQ(stats.tail_item_count, 2);
  EXPECT_NEAR(stats.tail_item_fraction, 0.4, 1e-12);
  EXPECT_NEAR(stats.tail_rating_share, 0.2, 1e-12);
  EXPECT_EQ(stats.max_popularity, 6);
  EXPECT_EQ(stats.min_popularity, 1);
  EXPECT_NEAR(stats.mean_popularity, 2.0, 1e-12);
  EXPECT_GT(stats.gini, 0.0);
}

TEST(ComputeLongTailStatsTest, UniformPopularityHasZeroGini) {
  // Figure-2-like tiny uniform catalog.
  std::vector<RatingEntry> ratings;
  for (int i = 0; i < 4; ++i) {
    ratings.push_back({i, i, 3.0f});
    ratings.push_back({(i + 1) % 4, i, 3.0f});
  }
  auto d = Dataset::Create(4, 4, std::move(ratings));
  ASSERT_TRUE(d.ok());
  const LongTailStats stats = ComputeLongTailStats(*d);
  EXPECT_NEAR(stats.gini, 0.0, 1e-12);
}

TEST(PopularityLorenzCurveTest, MonotoneAndEndsAtOne) {
  Dataset d = MakeSkewedDataset();
  const auto curve = PopularityLorenzCurve(d, 10);
  ASSERT_EQ(curve.size(), 10u);
  for (size_t k = 1; k < curve.size(); ++k) {
    EXPECT_GE(curve[k], curve[k - 1] - 1e-12);
  }
  EXPECT_NEAR(curve.back(), 1.0, 1e-12);
}

TEST(PopularityLorenzCurveTest, BelowDiagonalForSkewedData) {
  Dataset d = MakeSkewedDataset();
  const auto curve = PopularityLorenzCurve(d, 5);
  // At the 60% item quantile, a skewed catalog has < 60% of ratings.
  EXPECT_LT(curve[2], 0.6);
}

TEST(Figure2Test, TailContainsTheNicheMovie) {
  Dataset d = testing::MakeFigure2Dataset();
  const auto tail = TailItemFlags(d, 0.20);
  // M4 has a single rating — the nichest item of Figure 2.
  EXPECT_TRUE(tail[testing::kM4]);
  // M3 (4 ratings) is head.
  EXPECT_FALSE(tail[testing::kM3]);
}

}  // namespace
}  // namespace longtail
