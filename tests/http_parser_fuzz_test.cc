// Hostile-input fuzz for the incremental HTTP request parser
// (http/http_parser.h). Everything here runs in the regular suite and
// again in CI's ASan+UBSan job — the contract is "never crash, never
// over-read, reject with a typed status", and the sanitizers are the
// referee. All randomness is seeded mt19937: failures reproduce.
//
// Attack surface covered:
//   * truncation of a valid request at every byte boundary;
//   * refeeding the same request split across recv() calls at random
//     fragmentation (the result must not depend on fragmentation);
//   * single-byte corruption at every position;
//   * hostile Content-Length values (negative, overflowing, hex, huge);
//   * oversized request lines / header floods against small limits;
//   * pipelined garbage after a complete request;
//   * pure random byte soup.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "http/http_parser.h"

namespace longtail {
namespace {

using ParseResult = HttpRequestParser::ParseResult;

/// Feeds `wire` in fragments chosen by `rng`; checks the never-over-read
/// invariant on every call. Returns the terminal result (kNeedMore when
/// the bytes ran out mid-message).
ParseResult FeedFragmented(HttpRequestParser& parser, std::string_view wire,
                           std::mt19937& rng, size_t* total_consumed) {
  size_t offset = 0;
  *total_consumed = 0;
  ParseResult result = ParseResult::kNeedMore;
  while (offset < wire.size()) {
    std::uniform_int_distribution<size_t> chunk_dist(
        1, std::min<size_t>(wire.size() - offset, 97));
    const size_t chunk = chunk_dist(rng);
    size_t used = 0;
    result = parser.Consume(wire.substr(offset, chunk), &used);
    EXPECT_LE(used, chunk);  // NEVER claims bytes it was not offered
    *total_consumed += used;
    offset += chunk;
    if (result != ParseResult::kNeedMore) break;
    EXPECT_EQ(used, chunk);  // kNeedMore means it consumed everything
  }
  return result;
}

const char* kValidRequests[] = {
    "GET /healthz HTTP/1.1\r\n\r\n",
    "GET /metrics HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
    "POST /v1/recommend HTTP/1.1\r\n"
    "Host: localhost:8080\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 43\r\n"
    "\r\n"
    "{\"model\":\"AT\",\"user\":3,\"top_k\":10,\"x\":true}",
    "POST /v1/score HTTP/1.1\r\n"
    "Content-Length: 0\r\n"
    "\r\n",
};

TEST(HttpParserFuzzTest, TruncationAtEveryByteNeverCompletesNorCrashes) {
  for (const char* request : kValidRequests) {
    const std::string wire = request;
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      HttpRequestParser parser;
      size_t used = 0;
      const ParseResult result =
          parser.Consume(std::string_view(wire).substr(0, cut), &used);
      EXPECT_LE(used, cut);
      // A strict prefix of a valid request is never a complete request
      // (no valid request here has a strict prefix that is also valid).
      EXPECT_NE(result, ParseResult::kComplete)
          << request << " truncated at " << cut;
    }
  }
}

TEST(HttpParserFuzzTest, ResultIsFragmentationInvariant) {
  std::mt19937 rng(20120826);
  for (const char* request : kValidRequests) {
    const std::string wire = request;
    HttpRequestParser whole;
    size_t whole_used = 0;
    ASSERT_EQ(whole.Consume(wire, &whole_used), ParseResult::kComplete);
    for (int round = 0; round < 50; ++round) {
      HttpRequestParser parser;
      size_t used = 0;
      ASSERT_EQ(FeedFragmented(parser, wire, rng, &used),
                ParseResult::kComplete)
          << request << " round " << round;
      EXPECT_EQ(used, whole_used);
      EXPECT_EQ(parser.request().method, whole.request().method);
      EXPECT_EQ(parser.request().target, whole.request().target);
      EXPECT_EQ(parser.request().body, whole.request().body);
      EXPECT_EQ(parser.request().headers, whole.request().headers);
      EXPECT_EQ(parser.request().keep_alive, whole.request().keep_alive);
    }
  }
}

TEST(HttpParserFuzzTest, SingleByteCorruptionAtEveryPosition) {
  const unsigned char replacements[] = {0x00, 0x01, 0x7f, 0xff, ' ', '\r',
                                        '\n', ':',  '/',  '\t'};
  for (const char* request : kValidRequests) {
    const std::string wire = request;
    for (size_t pos = 0; pos < wire.size(); ++pos) {
      for (const unsigned char replacement : replacements) {
        std::string mutated = wire;
        if (mutated[pos] == static_cast<char>(replacement)) continue;
        mutated[pos] = static_cast<char>(replacement);
        HttpRequestParser parser;
        size_t used = 0;
        const ParseResult result = parser.Consume(mutated, &used);
        EXPECT_LE(used, mutated.size());
        if (result == ParseResult::kError) {
          EXPECT_FALSE(parser.error().ok());
          EXPECT_GE(parser.error_http_status(), 400);
          EXPECT_LE(parser.error_http_status(), 505);
        }
        // kComplete is also fine (some corruptions stay valid); the
        // invariant is no crash and no over-read, which ASan referees.
      }
    }
  }
}

TEST(HttpParserFuzzTest, HostileContentLengthNeverOverAllocates) {
  std::mt19937 rng(424242);
  const char* hostile[] = {
      "18446744073709551615",     // UINT64_MAX
      "18446744073709551616",     // UINT64_MAX + 1
      "99999999999999999999999999999999999999",
      "-1",
      "+5",
      "0x1000",
      "1e9",
      "5 5",
      "５",   // full-width digit (multi-byte UTF-8)
      "",
  };
  for (const char* value : hostile) {
    const std::string wire = std::string("POST / HTTP/1.1\r\nContent-Length: ") +
                             value + "\r\n\r\n";
    HttpRequestParser parser;
    size_t used = 0;
    const ParseResult result = parser.Consume(wire, &used);
    ASSERT_NE(result, ParseResult::kNeedMore) << value;
    // Every hostile length must be rejected before any body buffering —
    // either 400 (malformed) or 413 (parsed but over the cap).
    ASSERT_EQ(result, ParseResult::kError) << value;
    EXPECT_TRUE(parser.error_http_status() == 400 ||
                parser.error_http_status() == 413)
        << value << " -> " << parser.error_http_status();
    // And the parser must not have consumed past the offered bytes.
    EXPECT_LE(used, wire.size());
  }
  // A Content-Length within uint64 range but over max_body_bytes must be
  // rejected at header completion, not after buffering.
  HttpParserLimits limits;
  limits.max_body_bytes = 1024;
  for (int round = 0; round < 100; ++round) {
    std::uniform_int_distribution<uint64_t> dist(1025, 1ull << 40);
    const std::string wire = "POST / HTTP/1.1\r\nContent-Length: " +
                             std::to_string(dist(rng)) + "\r\n\r\n";
    HttpRequestParser parser(limits);
    size_t used = 0;
    ASSERT_EQ(parser.Consume(wire, &used), ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 413);
  }
}

TEST(HttpParserFuzzTest, OversizedLinesAreRejectedIncrementally) {
  HttpParserLimits limits;
  limits.max_request_line_bytes = 128;
  limits.max_header_bytes = 256;
  limits.max_headers = 8;

  {  // Endless request line, fed in chunks: must error without buffering
     // more than the cap (ASan would catch unbounded growth as OOM only,
     // so also assert it errors promptly after the cap).
    HttpRequestParser parser(limits);
    const std::string chunk = "GET /" + std::string(1000, 'a');
    size_t used = 0;
    EXPECT_EQ(parser.Consume(chunk, &used), ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 414);
  }
  {  // Endless single header line.
    HttpRequestParser parser(limits);
    size_t used = 0;
    ASSERT_EQ(parser.Consume("GET / HTTP/1.1\r\nX-A: ", &used),
              ParseResult::kNeedMore);
    EXPECT_EQ(parser.Consume(std::string(10000, 'b'), &used),
              ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 431);
  }
  {  // Header flood: many small headers past max_headers.
    HttpRequestParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 20; ++i) {
      wire += "H" + std::to_string(i) + ": x\r\n";
    }
    wire += "\r\n";
    size_t used = 0;
    EXPECT_EQ(parser.Consume(wire, &used), ParseResult::kError);
    EXPECT_EQ(parser.error_http_status(), 431);
  }
}

TEST(HttpParserFuzzTest, PipelinedGarbageAfterCompleteRequest) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int round = 0; round < 200; ++round) {
    std::string garbage(64, '\0');
    for (char& c : garbage) c = static_cast<char>(byte_dist(rng));
    const std::string first = "GET /healthz HTTP/1.1\r\n\r\n";
    const std::string wire = first + garbage;

    HttpRequestParser parser;
    size_t used = 0;
    ASSERT_EQ(parser.Consume(wire, &used), ParseResult::kComplete);
    // The complete request claims exactly its own bytes; the garbage is
    // the next message's problem.
    ASSERT_EQ(used, first.size());

    parser.Reset();
    size_t garbage_used = 0;
    const ParseResult result = parser.Consume(
        std::string_view(wire).substr(used), &garbage_used);
    EXPECT_LE(garbage_used, garbage.size());
    EXPECT_NE(result, ParseResult::kComplete);  // 64 random bytes: no
  }
}

TEST(HttpParserFuzzTest, RandomByteSoupNeverCrashes) {
  std::mt19937 rng(1234567);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<size_t> len_dist(0, 512);
  for (int round = 0; round < 2000; ++round) {
    std::string soup(len_dist(rng), '\0');
    for (char& c : soup) c = static_cast<char>(byte_dist(rng));
    HttpRequestParser parser;
    size_t used = 0;
    const ParseResult result = FeedFragmented(parser, soup, rng, &used);
    EXPECT_LE(used, soup.size());
    if (result == ParseResult::kError) {
      EXPECT_GE(parser.error_http_status(), 400);
      EXPECT_LE(parser.error_http_status(), 505);
    }
  }
}

TEST(HttpParserFuzzTest, StickyErrorUntilReset) {
  HttpRequestParser parser;
  size_t used = 0;
  ASSERT_EQ(parser.Consume("BAD\x01 / HTTP/1.1\r\n\r\n", &used),
            ParseResult::kError);
  // Further input is not consumed while errored.
  EXPECT_EQ(parser.Consume("GET / HTTP/1.1\r\n\r\n", &used),
            ParseResult::kError);
  EXPECT_EQ(used, 0u);
  parser.Reset();
  EXPECT_EQ(parser.Consume("GET / HTTP/1.1\r\n\r\n", &used),
            ParseResult::kComplete);
}

}  // namespace
}  // namespace longtail
