#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace longtail {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, LogBelowThresholdDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  LT_LOG(DEBUG) << "suppressed " << 123;
  LT_LOG(INFO) << "suppressed too";
  SetLogLevel(original);
}

TEST(CheckTest, PassingChecksAreSilent) {
  LT_CHECK(true) << "never shown";
  LT_CHECK_EQ(2 + 2, 4);
  LT_CHECK_NE(1, 2);
  LT_CHECK_LT(1, 2);
  LT_CHECK_LE(2, 2);
  LT_CHECK_GT(3, 2);
  LT_CHECK_GE(3, 3);
  LT_CHECK_OK(Status::OK());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(LT_CHECK(false) << "boom", "Check failed: false");
}

TEST(CheckDeathTest, FailingComparisonPrintsOperands) {
  EXPECT_DEATH(LT_CHECK_EQ(1, 2), "lhs=1 rhs=2");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(LT_CHECK_OK(Status::IOError("disk gone")), "disk gone");
}

TEST(CheckTest, CheckEvaluatesConditionOnce) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  LT_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace longtail
