#include "baselines/pure_svd.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

PureSvdOptions SmallOptions(int f) {
  PureSvdOptions options;
  options.num_factors = f;
  options.svd.power_iterations = 3;
  return options;
}

TEST(PureSvdTest, FitAndRecommend) {
  Dataset d = MakeFigure2Dataset();
  PureSvdRecommender rec(SmallOptions(3));
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 4u);
  for (const auto& si : *top) {
    EXPECT_FALSE(d.HasRating(testing::kU5, si.item));
  }
}

TEST(PureSvdTest, FactorsHaveRequestedShape) {
  Dataset d = MakeFigure2Dataset();
  PureSvdRecommender rec(SmallOptions(3));
  ASSERT_TRUE(rec.Fit(d).ok());
  EXPECT_EQ(rec.item_factors().rows(), 6u);
  EXPECT_EQ(rec.item_factors().cols(), 3u);
}

TEST(PureSvdTest, FactorCountClampedToMatrixRank) {
  Dataset d = MakeFigure2Dataset();  // 5 users → rank ≤ 5
  PureSvdRecommender rec(SmallOptions(50));
  ASSERT_TRUE(rec.Fit(d).ok());
  EXPECT_EQ(rec.item_factors().cols(), 5u);
}

TEST(PureSvdTest, FullRankReconstructionRanksRatedItemsHighly) {
  // With full rank, r̂_u = r_u Q Qᵀ = r_u exactly; the user's own 5-star
  // items must outscore items nobody similar rated.
  Dataset d = MakeFigure2Dataset();
  PureSvdRecommender rec(SmallOptions(5));
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM3, testing::kM4};
  auto scores = rec.ScoreItems(testing::kU2, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[0], (*scores)[1]);  // Rated 5-star M3 ≫ unrated M4.
}

TEST(PureSvdTest, PrefersPopularItemsOnRealisticCorpora) {
  // The paper's observation (Fig. 6): PureSVD's principal components track
  // head items, so its top lists are far more popular than the catalog
  // average. (On the 5×6 Figure 2 toy matrix rank-2 SVD can behave
  // taste-like, so this property is asserted on a synthetic corpus.)
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.05));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  PureSvdRecommender rec(SmallOptions(16));
  ASSERT_TRUE(rec.Fit(d).ok());
  double top_pop = 0.0;
  int count = 0;
  for (UserId u = 0; u < 30; ++u) {
    auto top = rec.RecommendTopK(u, 10);
    ASSERT_TRUE(top.ok());
    for (const auto& si : *top) {
      top_pop += d.ItemPopularity(si.item);
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  top_pop /= count;
  const double catalog_mean =
      static_cast<double>(d.num_ratings()) / d.num_items();
  EXPECT_GT(top_pop, 1.5 * catalog_mean);
}

TEST(PureSvdTest, InvalidFactorsRejected) {
  Dataset d = MakeFigure2Dataset();
  PureSvdRecommender rec(SmallOptions(0));
  EXPECT_FALSE(rec.Fit(d).ok());
}

TEST(PureSvdTest, DeterministicGivenSeed) {
  Dataset d = MakeFigure2Dataset();
  PureSvdRecommender r1(SmallOptions(3));
  PureSvdRecommender r2(SmallOptions(3));
  ASSERT_TRUE(r1.Fit(d).ok());
  ASSERT_TRUE(r2.Fit(d).ok());
  auto t1 = r1.RecommendTopK(testing::kU5, 4);
  auto t2 = r2.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (size_t k = 0; k < t1->size(); ++k) {
    EXPECT_EQ((*t1)[k].item, (*t2)[k].item);
    EXPECT_DOUBLE_EQ((*t1)[k].score, (*t2)[k].score);
  }
}

TEST(PureSvdTest, ScalesToSyntheticData) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.05));
  ASSERT_TRUE(data.ok());
  PureSvdRecommender rec(SmallOptions(20));
  ASSERT_TRUE(rec.Fit(data->dataset).ok());
  auto top = rec.RecommendTopK(0, 10);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 10u);
}

}  // namespace
}  // namespace longtail
