// End-to-end pipeline test asserting the paper's *qualitative* findings on
// a small synthetic corpus:
//   (1) graph methods beat latent-factor methods on long-tail Recall@N;
//   (2) LDA/PureSVD recommend more popular items than the graph methods;
//   (3) the graph methods are more diverse;
//   (4) DPPR finds tail items but with weaker taste match (similarity).
#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/longtail_stats.h"
#include "data/split.h"
#include "eval/harness.h"

namespace longtail {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec = SyntheticSpec::MovieLensLike(0.15);
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    corpus_ = new SyntheticData(std::move(data).value());

    LongTailSplitOptions split_options;
    split_options.num_test_cases = 150;
    split_options.min_rating = 5.0f;
    auto split = MakeLongTailSplit(corpus_->dataset, split_options);
    ASSERT_TRUE(split.ok());
    split_ = new TrainTestSplit(std::move(split).value());

    SuiteOptions suite_options;
    suite_options.walk.iterations = 15;
    suite_options.walk.max_subgraph_items = 0;
    suite_options.lda.num_topics = 8;
    suite_options.lda.iterations = 60;
    suite_options.svd.num_factors = 16;
    auto suite = BuildAndFitSuite(split_->train, suite_options);
    ASSERT_TRUE(suite.ok());
    suite_ = new AlgorithmSuite(std::move(suite).value());

    users_ = new std::vector<UserId>(
        SampleTestUsers(split_->train, 80, 10, 77));

    RecallProtocolOptions recall_options;
    recall_options.num_decoys = 400;
    recall_options.max_n = 50;
    recall_ = new std::map<std::string, RecallCurve>();
    reports_ = new std::map<std::string, TopNReport>();
    for (const auto& alg : suite_->algorithms) {
      auto curve =
          EvaluateRecall(*alg, split_->train, split_->test, recall_options);
      ASSERT_TRUE(curve.ok()) << alg->name();
      (*recall_)[alg->name()] = std::move(curve).value();
      auto report = EvaluateTopN(*alg, split_->train, *users_, 10,
                                 &corpus_->ontology);
      ASSERT_TRUE(report.ok()) << alg->name();
      (*reports_)[alg->name()] = std::move(report).value();
    }
  }

  static void TearDownTestSuite() {
    delete recall_;
    delete reports_;
    delete users_;
    delete suite_;
    delete split_;
    delete corpus_;
  }

  static double MeanTopPopularity(const TopNReport& r) {
    double sum = 0.0;
    for (double p : r.popularity_at) sum += p;
    return sum / r.popularity_at.size();
  }

  static SyntheticData* corpus_;
  static TrainTestSplit* split_;
  static AlgorithmSuite* suite_;
  static std::vector<UserId>* users_;
  static std::map<std::string, RecallCurve>* recall_;
  static std::map<std::string, TopNReport>* reports_;
};

SyntheticData* PipelineTest::corpus_ = nullptr;
TrainTestSplit* PipelineTest::split_ = nullptr;
AlgorithmSuite* PipelineTest::suite_ = nullptr;
std::vector<UserId>* PipelineTest::users_ = nullptr;
std::map<std::string, RecallCurve>* PipelineTest::recall_ = nullptr;
std::map<std::string, TopNReport>* PipelineTest::reports_ = nullptr;

TEST_F(PipelineTest, PrintSummaryForHumans) {
  // Informational: the full cross-algorithm table for eyeballing shapes.
  std::printf("%-8s %8s %8s %8s %8s %8s %10s\n", "alg", "rec@10", "rec@50",
              "pop@10", "divers", "simil", "s/user");
  for (const auto& alg : suite_->algorithms) {
    const auto& curve = recall_->at(alg->name());
    const auto& report = reports_->at(alg->name());
    std::printf("%-8s %8.3f %8.3f %8.1f %8.3f %8.3f %10.5f\n",
                alg->name().c_str(), curve.At(10), curve.At(50),
                MeanTopPopularity(report), report.diversity,
                report.similarity, report.seconds_per_user);
  }
}

TEST_F(PipelineTest, GraphMethodsBeatLatentFactorsOnLongTailRecall) {
  // Figure 5's headline: the graph walks dominate the latent-factor
  // baselines on long-tail recall. (The paper's finer AC1>AT>HT ordering
  // needs the full-size catalogs; see EXPERIMENTS.md.)
  const double at = recall_->at("AT").At(50);
  const double ht = recall_->at("HT").At(50);
  const double ac1 = recall_->at("AC1").At(50);
  const double ac2 = recall_->at("AC2").At(50);
  const double svd = recall_->at("PureSVD").At(50);
  const double lda = recall_->at("LDA").At(50);
  // Every graph method clearly beats LDA on long-tail recall.
  EXPECT_GT(at, lda + 0.1);
  EXPECT_GT(ht, lda + 0.1);
  EXPECT_GT(ac1, lda + 0.1);
  EXPECT_GT(ac2, lda + 0.1);
  // The best graph method beats PureSVD (at toy catalog sizes which of the
  // four wins flips between HT and AT; on the paper-scale corpora the
  // benches report the finer ordering — see EXPERIMENTS.md).
  EXPECT_GT(std::max({at, ht, ac1, ac2}), svd);
  // Paper-consistent: the topic entropy (AC2) beats the item entropy (AC1).
  EXPECT_GE(ac2, ac1);
}

TEST_F(PipelineTest, RecallCurvesAreSane) {
  for (const auto& [name, curve] : *recall_) {
    for (int n = 2; n <= 50; ++n) {
      EXPECT_GE(curve.At(n), curve.At(n - 1) - 1e-12) << name;
    }
    EXPECT_GE(curve.At(1), 0.0) << name;
    EXPECT_LE(curve.At(50), 1.0) << name;
  }
}

TEST_F(PipelineTest, LatentFactorModelsRecommendMorePopularItems) {
  // Figure 6's headline: PureSVD/LDA top lists sit in the head.
  const double graph_pop = MeanTopPopularity(reports_->at("AT"));
  EXPECT_GT(MeanTopPopularity(reports_->at("PureSVD")), graph_pop);
  EXPECT_GT(MeanTopPopularity(reports_->at("LDA")), graph_pop);
}

TEST_F(PipelineTest, GraphMethodsAreMoreDiverse) {
  // Table 2's headline: LDA is dramatically the least diverse, PureSVD
  // next; the graph family tops the table (led by HT/AT at this scale).
  const double svd = reports_->at("PureSVD").diversity;
  const double lda = reports_->at("LDA").diversity;
  EXPECT_GT(svd, lda);
  for (const char* name : {"AT", "HT", "AC1", "AC2"}) {
    EXPECT_GT(reports_->at(name).diversity, lda) << name;
  }
  const double best_graph = std::max(
      {reports_->at("AT").diversity, reports_->at("HT").diversity,
       reports_->at("AC1").diversity, reports_->at("AC2").diversity});
  EXPECT_GT(best_graph, svd);
}

TEST_F(PipelineTest, EntropyVariantsMatchUserTastes) {
  // Table 3's shape: the graph methods' recommendations stay taste-matched
  // — far above LDA — and AC2 tops AC1/AT/HT (the entropy refinement
  // helps quality).
  const double lda = reports_->at("LDA").similarity;
  for (const char* name : {"AT", "HT", "AC1", "AC2"}) {
    EXPECT_GT(reports_->at(name).similarity, lda) << name;
  }
  EXPECT_GE(reports_->at("AC2").similarity,
            reports_->at("AC1").similarity - 0.02);
}

TEST_F(PipelineTest, DpprFindsTailButGraphMethodsFindTastefulTail) {
  // DPPR popularity should be low (tail) — comparable to graph methods,
  // and far below PureSVD.
  EXPECT_LT(MeanTopPopularity(reports_->at("DPPR")),
            MeanTopPopularity(reports_->at("PureSVD")));
}

TEST_F(PipelineTest, AllSevenProduceFullLists) {
  for (const auto& alg : suite_->algorithms) {
    auto top = alg->RecommendTopK((*users_)[0], 10);
    ASSERT_TRUE(top.ok()) << alg->name();
    EXPECT_EQ(top->size(), 10u) << alg->name();
  }
}

}  // namespace
}  // namespace longtail
