// Walk-kernel / legacy parity: the blocked, pre-normalized WalkKernel
// sweeps must agree with the retained reference loop
// (AbsorbingValueTruncatedReference) on random bipartite graphs — including
// isolated nodes, all-absorbing and empty-absorbing sets, and empty
// subgraphs — and the kernel-served recommenders must stay bit-identical
// between the sequential and batch paths at 1 and 8 threads.
//
// Tolerance contract (documented in docs/KERNELS.md): the kernel
// pre-divides weights by degree and re-associates the row sum, so ordinary
// transient rows agree with the reference to ~1e-13 relative per
// iteration; absorbing rows are exactly 0 and isolated transient rows are
// bit-identical (same two-operand additions) on both paths.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "graph/markov.h"
#include "graph/subgraph.h"
#include "graph/walk_kernel.h"
#include "graph/walk_layout.h"

namespace longtail {
namespace {

/// Random bipartite graph with `edge_prob` density; users/items past the
/// `connected_*` counts are left isolated on purpose.
BipartiteGraph RandomGraph(int32_t num_users, int32_t num_items,
                           double edge_prob, uint64_t seed,
                           int32_t isolated_users = 0,
                           int32_t isolated_items = 0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> rating(1, 5);
  const int32_t connected_users = num_users - isolated_users;
  const int32_t connected_items = num_items - isolated_items;
  std::vector<std::vector<std::pair<NodeId, double>>> adj(num_users +
                                                          num_items);
  for (int32_t u = 0; u < connected_users; ++u) {
    for (int32_t i = 0; i < connected_items; ++i) {
      if (coin(rng) >= edge_prob) continue;
      const double w = static_cast<double>(rating(rng));
      adj[u].push_back({num_users + i, w});
      adj[num_users + i].push_back({u, w});
    }
  }
  return BipartiteGraph::FromAdjacency(num_users, num_items, adj);
}

std::vector<bool> RandomAbsorbing(int32_t n, double prob, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<bool> absorbing(n, false);
  for (int32_t v = 0; v < n; ++v) absorbing[v] = coin(rng) < prob;
  return absorbing;
}

std::vector<double> RandomCosts(int32_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cost(0.0, 3.0);
  std::vector<double> costs(n);
  for (int32_t v = 0; v < n; ++v) costs[v] = cost(rng);
  return costs;
}

void ExpectSweepParity(const BipartiteGraph& g,
                       const std::vector<bool>& absorbing,
                       const std::vector<double>& costs, int iterations,
                       const std::string& label) {
  std::vector<double> ref, ref_scratch, ker, ker_scratch;
  AbsorbingValueTruncatedReference(g, absorbing, costs, iterations, &ref,
                                   &ref_scratch);
  AbsorbingValueTruncated(g, absorbing, costs, iterations, &ker,
                          &ker_scratch);
  ASSERT_EQ(ref.size(), ker.size()) << label;
  for (size_t v = 0; v < ref.size(); ++v) {
    const double tol =
        1e-12 * std::max({1.0, std::abs(ref[v]), std::abs(ker[v])});
    EXPECT_NEAR(ref[v], ker[v], tol) << label << " node " << v;
    if (absorbing[v]) {
      // Absorbing rows are pinned at exactly zero on both paths.
      EXPECT_EQ(0.0, ker[v]) << label << " node " << v;
    } else if (g.WeightedDegree(v) <= 0.0) {
      // Isolated transient rows perform the same two-operand additions on
      // both paths, so they must match bit for bit.
      EXPECT_EQ(ref[v], ker[v]) << label << " node " << v;
    }
  }
}

TEST(WalkKernelTest, MatchesReferenceOnRandomGraphs) {
  struct Config {
    int32_t users, items, isolated_users, isolated_items;
    double density, absorbing_prob;
  };
  const Config configs[] = {
      {40, 30, 0, 0, 0.15, 0.2},
      {80, 120, 5, 9, 0.05, 0.1},   // sparse, with isolated nodes
      {17, 11, 3, 2, 0.60, 0.5},    // dense, heavy absorbing set
      {64, 64, 0, 0, 0.02, 0.05},   // nearly disconnected
      {1, 1, 0, 0, 1.0, 0.5},       // minimal
  };
  uint64_t seed = 1000;
  for (const Config& c : configs) {
    const BipartiteGraph g = RandomGraph(c.users, c.items, c.density, ++seed,
                                         c.isolated_users, c.isolated_items);
    const int32_t n = g.num_nodes();
    for (int rep = 0; rep < 3; ++rep) {
      const auto absorbing = RandomAbsorbing(n, c.absorbing_prob, ++seed);
      const std::string label = "graph " + std::to_string(c.users) + "x" +
                                std::to_string(c.items) + " rep " +
                                std::to_string(rep);
      ExpectSweepParity(g, absorbing, std::vector<double>(n, 1.0), 15,
                        label + " unit-cost");
      ExpectSweepParity(g, absorbing, RandomCosts(n, ++seed), 15,
                        label + " random-cost");
    }
  }
}

TEST(WalkKernelTest, AllAbsorbingIsExactlyZero) {
  const BipartiteGraph g = RandomGraph(20, 25, 0.2, 7);
  const std::vector<bool> absorbing(g.num_nodes(), true);
  std::vector<double> value, scratch;
  AbsorbingValueTruncated(g, absorbing,
                          std::vector<double>(g.num_nodes(), 1.0), 15,
                          &value, &scratch);
  for (double v : value) EXPECT_EQ(0.0, v);
}

TEST(WalkKernelTest, EmptyAbsorbingSetMatchesReference) {
  // No absorbing nodes: every value grows toward τ·cost. The kernel must
  // track the reference (and neither may blow up or NaN).
  const BipartiteGraph g = RandomGraph(30, 20, 0.2, 11, 2, 3);
  const int32_t n = g.num_nodes();
  ExpectSweepParity(g, std::vector<bool>(n, false), RandomCosts(n, 12), 25,
                    "empty absorbing set");
}

TEST(WalkKernelTest, ZeroIterationsLeavesZeros) {
  const BipartiteGraph g = RandomGraph(10, 10, 0.3, 21);
  std::vector<double> value, scratch;
  AbsorbingValueTruncated(g, RandomAbsorbing(g.num_nodes(), 0.3, 22),
                          std::vector<double>(g.num_nodes(), 1.0), 0, &value,
                          &scratch);
  ASSERT_EQ(static_cast<size_t>(g.num_nodes()), value.size());
  for (double v : value) EXPECT_EQ(0.0, v);
}

TEST(WalkKernelTest, EmptySeedSubgraphAndEmptyGraph) {
  // Empty seed set → empty subgraph → the kernel must handle n == 0.
  const BipartiteGraph g = RandomGraph(12, 8, 0.3, 31);
  WalkWorkspace ws;
  const Subgraph& sub = ExtractSubgraphInto(g, {}, SubgraphOptions{}, &ws);
  EXPECT_EQ(0, sub.graph.num_nodes());
  std::vector<double> value, scratch;
  AbsorbingValueTruncated(sub.graph, {}, {}, 15, &ws.kernel, &value,
                          &scratch);
  EXPECT_TRUE(value.empty());
  // Default-constructed (empty) graph through the allocating flavour.
  const std::vector<double> empty =
      AbsorbingValueTruncated(BipartiteGraph(), {}, {}, 15);
  EXPECT_TRUE(empty.empty());
}

TEST(WalkKernelTest, RebuildAcrossQueriesMatchesFreshKernel) {
  // One long-lived kernel (the WalkWorkspace situation) recompiled for a
  // sequence of different graphs and absorbing sets must match a fresh
  // kernel on every query, bit for bit.
  WalkKernel reused;
  uint64_t seed = 500;
  for (int query = 0; query < 5; ++query) {
    const BipartiteGraph g =
        RandomGraph(20 + 7 * query, 30 - 3 * query, 0.2, ++seed, query, 1);
    const int32_t n = g.num_nodes();
    const auto absorbing = RandomAbsorbing(n, 0.25, ++seed);
    const auto costs = RandomCosts(n, ++seed);
    std::vector<double> fresh, fresh_scratch, reused_value, reused_scratch;
    AbsorbingValueTruncated(g, absorbing, costs, 10, &fresh, &fresh_scratch);
    AbsorbingValueTruncated(g, absorbing, costs, 10, &reused, &reused_value,
                            &reused_scratch);
    ASSERT_EQ(fresh.size(), reused_value.size());
    for (size_t v = 0; v < fresh.size(); ++v) {
      EXPECT_EQ(fresh[v], reused_value[v]) << "query " << query;
    }
  }
}

TEST(WalkKernelTest, ItemValuesSweepMatchesFullSweepBitwise) {
  // The production ranking sweep computes only the alternating chain the
  // item-side values depend on; those values must be BIT-identical to the
  // full double-buffered sweep, including isolated items (which take two
  // chained cost additions per step) — at both even and odd τ.
  uint64_t seed = 9000;
  for (int iterations : {0, 1, 2, 7, 15, 16}) {
    const BipartiteGraph g = RandomGraph(40, 35, 0.12, ++seed, 4, 5);
    const int32_t n = g.num_nodes();
    const auto absorbing = RandomAbsorbing(n, 0.15, ++seed);
    const auto costs = RandomCosts(n, ++seed);
    WalkKernel kernel;
    kernel.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
    kernel.CompileAbsorbingSweep(absorbing, costs);
    std::vector<double> full, scratch, ranking;
    kernel.SweepTruncated(iterations, &full, &scratch);
    kernel.SweepTruncatedItemValues(iterations, &ranking);
    ASSERT_EQ(full.size(), ranking.size());
    for (int32_t v = g.num_users(); v < n; ++v) {
      EXPECT_EQ(full[v], ranking[v])
          << "item node " << v << " tau " << iterations;
    }
  }
}

TEST(WalkKernelTest, ApplyColumnStochasticMatchesPprScatter) {
  const BipartiteGraph g = RandomGraph(25, 35, 0.15, 77, 2, 2);
  const int32_t n = g.num_nodes();
  std::mt19937_64 rng(78);
  std::uniform_real_distribution<double> mass(0.0, 1.0);
  std::vector<double> x(n), restart(n);
  for (int32_t v = 0; v < n; ++v) {
    x[v] = mass(rng);
    restart[v] = mass(rng);
  }
  const double lambda = 0.5;
  // Reference: the pre-kernel edge-by-edge scatter of (1-λ)r + λPᵀx.
  std::vector<double> expected(n);
  for (int32_t v = 0; v < n; ++v) expected[v] = (1.0 - lambda) * restart[v];
  for (int32_t v = 0; v < n; ++v) {
    const double d = g.WeightedDegree(v);
    if (d <= 0.0) continue;
    const double out = lambda * x[v] / d;
    const auto nbrs = g.Neighbors(v);
    const auto wts = g.Weights(v);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      expected[nbrs[k]] += out * wts[k];
    }
  }
  WalkKernel kernel;
  kernel.BuildTransitions(g, WalkKernel::Normalization::kColumnStochastic);
  std::vector<double> actual(n);
  kernel.Apply(lambda, x.data(), 1.0 - lambda, restart.data(), actual.data());
  for (int32_t v = 0; v < n; ++v) {
    EXPECT_NEAR(expected[v], actual[v],
                1e-12 * std::max(1.0, std::abs(expected[v])))
        << "node " << v;
  }
}

TEST(WalkKernelTest, ApplyRawMatchesKatzScatter) {
  const BipartiteGraph g = RandomGraph(30, 20, 0.2, 91);
  const int32_t n = g.num_nodes();
  std::mt19937_64 rng(92);
  std::uniform_real_distribution<double> mass(0.0, 1.0);
  std::vector<double> x(n);
  for (int32_t v = 0; v < n; ++v) x[v] = mass(rng) < 0.5 ? 0.0 : mass(rng);
  const double beta = 0.01;
  std::vector<double> expected(n, 0.0);
  for (int32_t v = 0; v < n; ++v) {
    if (x[v] == 0.0) continue;
    const auto nbrs = g.Neighbors(v);
    const auto wts = g.Weights(v);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      expected[nbrs[k]] += beta * x[v] * wts[k];
    }
  }
  WalkKernel kernel;
  kernel.BuildTransitions(g, WalkKernel::Normalization::kRaw);
  std::vector<double> actual(n);
  kernel.Apply(beta, x.data(), 0.0, nullptr, actual.data());
  for (int32_t v = 0; v < n; ++v) {
    EXPECT_NEAR(expected[v], actual[v],
                1e-12 * std::max(1.0, std::abs(expected[v])))
        << "node " << v;
    if (expected[v] == 0.0) {
      // Nodes no mass can reach must stay exactly zero (katz_test relies
      // on exact zeros to mark unreachable items).
      EXPECT_EQ(0.0, actual[v]) << "node " << v;
    }
  }
}

TEST(WalkKernelTest, ApplySparseFrontierTakesPushAndMatchesScatter) {
  // A single-nonzero input (the first Katz/PPR step) must route through
  // the sparse push path and still match the reference scatter for both
  // Apply normalizations.
  const BipartiteGraph g = RandomGraph(40, 30, 0.15, 131);
  const int32_t n = g.num_nodes();
  std::vector<double> x(n, 0.0), restart(n, 0.0);
  const NodeId source = g.UserNode(7);
  x[source] = 1.0;
  for (int32_t v = 0; v < n; ++v) restart[v] = 0.01 * (v + 1);
  {
    std::vector<double> expected(n);
    const double lambda = 0.5;
    for (int32_t v = 0; v < n; ++v) expected[v] = (1.0 - lambda) * restart[v];
    const double d = g.WeightedDegree(source);
    ASSERT_GT(d, 0.0);
    const auto nbrs = g.Neighbors(source);
    const auto wts = g.Weights(source);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      expected[nbrs[k]] += lambda / d * wts[k];
    }
    WalkKernel kernel;
    kernel.BuildTransitions(g, WalkKernel::Normalization::kColumnStochastic);
    std::vector<double> actual(n);
    kernel.Apply(lambda, x.data(), 1.0 - lambda, restart.data(),
                 actual.data());
    for (int32_t v = 0; v < n; ++v) {
      EXPECT_NEAR(expected[v], actual[v],
                  1e-12 * std::max(1.0, std::abs(expected[v])))
          << "node " << v;
    }
  }
  {
    const double beta = 0.01;
    std::vector<double> expected(n, 0.0);
    const auto nbrs = g.Neighbors(source);
    const auto wts = g.Weights(source);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      expected[nbrs[k]] += beta * wts[k];
    }
    WalkKernel kernel;
    kernel.BuildTransitions(g, WalkKernel::Normalization::kRaw);
    std::vector<double> actual(n);
    kernel.Apply(beta, x.data(), 0.0, nullptr, actual.data());
    for (int32_t v = 0; v < n; ++v) {
      EXPECT_NEAR(expected[v], actual[v],
                  1e-12 * std::max(1.0, std::abs(expected[v])))
          << "node " << v;
      if (expected[v] == 0.0) EXPECT_EQ(0.0, actual[v]) << "node " << v;
    }
  }
}

// Runtime ISA dispatch: one portable binary carries a scalar and (on
// x86-64 toolchains) an AVX2 row-gather; the CPUID probe picks one at
// kernel construction. The two must be BIT-identical — same per-lane
// accumulation, same reduction tree, no FP contraction — across every
// sweep flavour. On hosts without AVX2 both kernels bind "generic" and
// the comparison is trivially green; the CI AVX2 leg pins the real case.
TEST(WalkKernelTest, RuntimeIsaDispatchBitIdenticalToGeneric) {
  const BipartiteGraph g = RandomGraph(70, 90, 0.12, 4242, 4, 5);
  const int32_t n = g.num_nodes();
  const auto absorbing = RandomAbsorbing(n, 0.15, 4243);
  const auto costs = RandomCosts(n, 4244);

  WalkKernel dispatched;  // whatever the CPU probe picked
  WalkKernel generic;
  generic.ForceGenericIsaForTesting();
  EXPECT_STREQ(generic.isa_name(), "generic");
  if (WalkKernel::RuntimeAvx2Available()) {
    EXPECT_STREQ(dispatched.isa_name(), "avx2");
  } else {
    EXPECT_STREQ(dispatched.isa_name(), "generic");
  }

  // Absorbing sweeps: full double-buffered and in-place ranking flavours.
  dispatched.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
  generic.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
  dispatched.CompileAbsorbingSweep(absorbing, costs);
  generic.CompileAbsorbingSweep(absorbing, costs);
  for (int tau : {1, 2, 7, 15}) {
    std::vector<double> va, sa, vb, sb;
    dispatched.SweepTruncated(tau, &va, &sa);
    generic.SweepTruncated(tau, &vb, &sb);
    ASSERT_EQ(va.size(), vb.size());
    for (size_t v = 0; v < va.size(); ++v) {
      EXPECT_EQ(va[v], vb[v]) << "full sweep tau " << tau << " node " << v;
    }
    std::vector<double> ra, rb;
    dispatched.SweepTruncatedItemValues(tau, &ra);
    generic.SweepTruncatedItemValues(tau, &rb);
    for (int32_t v = g.num_users(); v < n; ++v) {
      EXPECT_EQ(ra[v], rb[v]) << "ranking sweep tau " << tau << " item row "
                              << v;
    }
  }

  // Power-iteration Apply, dense pull path (x dense everywhere so the
  // sparse push is never chosen), with and without a restart vector.
  WalkKernel dispatched_col, generic_col;
  generic_col.ForceGenericIsaForTesting();
  dispatched_col.BuildTransitions(
      g, WalkKernel::Normalization::kColumnStochastic);
  generic_col.BuildTransitions(g,
                               WalkKernel::Normalization::kColumnStochastic);
  std::vector<double> x(n), restart(n);
  for (int32_t v = 0; v < n; ++v) {
    x[v] = 0.25 + 0.5 * ((v * 2654435761u) % 97) / 97.0;
    restart[v] = v % 7 == 0 ? 1.0 / 7.0 : 0.0;
  }
  std::vector<double> ya(n), yb(n);
  dispatched_col.Apply(0.85, x.data(), 0.15, restart.data(), ya.data());
  generic_col.Apply(0.85, x.data(), 0.15, restart.data(), yb.data());
  for (int32_t v = 0; v < n; ++v) {
    EXPECT_EQ(ya[v], yb[v]) << "apply+restart node " << v;
  }
  dispatched_col.Apply(0.5, x.data(), 0.0, nullptr, ya.data());
  generic_col.Apply(0.5, x.data(), 0.0, nullptr, yb.data());
  for (int32_t v = 0; v < n; ++v) {
    EXPECT_EQ(ya[v], yb[v]) << "apply node " << v;
  }
}

// The three execution plans — simple flat loop, L1-blocked tiles, blocked
// over a WalkLayout-permuted CSR — are *memory layout* decisions only: for
// the same query they must produce BIT-identical results, including the
// reordered plan, whose coefficients are scattered and outputs gathered
// through the permutation. Exercised against the auto plan on random
// graphs with isolated nodes and single-side (users-only / items-only)
// graphs, at several τ, on both the dispatched and the generic row-gather
// flavour.
TEST(WalkKernelTest, ExecutionPlansBitIdenticalAcrossLayouts) {
  struct Config {
    int32_t users, items, isolated_users, isolated_items;
    double density;
  };
  const Config configs[] = {
      {40, 30, 0, 0, 0.15},
      {80, 120, 5, 9, 0.05},  // sparse, isolated nodes on both sides
      {25, 0, 3, 0, 0.0},     // users only — every row isolated
      {0, 18, 0, 2, 0.0},     // items only
  };
  const WalkKernel::SweepMode plans[] = {
      WalkKernel::SweepMode::kSimple,
      WalkKernel::SweepMode::kBlocked,
      WalkKernel::SweepMode::kBlockedReordered,
  };
  uint64_t seed = 31000;
  for (const Config& c : configs) {
    const BipartiteGraph g = RandomGraph(c.users, c.items, c.density, ++seed,
                                         c.isolated_users, c.isolated_items);
    const int32_t n = g.num_nodes();
    const auto absorbing = RandomAbsorbing(n, 0.2, ++seed);
    const auto costs = RandomCosts(n, ++seed);
    for (int tau : {1, 7, 16}) {
      WalkKernel base;  // auto plan, dispatched ISA
      base.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
      base.CompileAbsorbingSweep(absorbing, costs);
      std::vector<double> full, scratch, rank;
      base.SweepTruncated(tau, &full, &scratch);
      base.SweepTruncatedItemValues(tau, &rank);
      for (bool generic : {false, true}) {
        for (WalkKernel::SweepMode plan : plans) {
          WalkKernel k;
          if (generic) k.ForceGenericIsaForTesting();
          k.ForcePlanForTesting(plan);
          k.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
          k.CompileAbsorbingSweep(absorbing, costs);
          const std::string label =
              std::string(k.sweep_strategy()) + (generic ? "/generic" : "") +
              " " + std::to_string(c.users) + "x" + std::to_string(c.items) +
              " tau " + std::to_string(tau);
          std::vector<double> f2, s2, r2;
          k.SweepTruncated(tau, &f2, &s2);
          ASSERT_EQ(full.size(), f2.size()) << label;
          for (size_t v = 0; v < full.size(); ++v) {
            EXPECT_EQ(full[v], f2[v]) << label << " node " << v;
          }
          k.SweepTruncatedItemValues(tau, &r2);
          ASSERT_EQ(rank.size(), r2.size()) << label;
          for (int32_t v = g.num_users(); v < n; ++v) {
            EXPECT_EQ(rank[v], r2[v]) << label << " item row " << v;
          }
        }
      }
    }
  }
}

// Forced plans on the empty subgraph an empty seed set extracts (and on a
// default-constructed graph): every plan must handle n == 0.
TEST(WalkKernelTest, ForcedPlansHandleEmptySeedSubgraph) {
  const BipartiteGraph g = RandomGraph(12, 8, 0.3, 33000);
  for (WalkKernel::SweepMode plan :
       {WalkKernel::SweepMode::kSimple, WalkKernel::SweepMode::kBlocked,
        WalkKernel::SweepMode::kBlockedReordered}) {
    WalkWorkspace ws;
    ws.kernel.ForcePlanForTesting(plan);
    const Subgraph& sub = ExtractSubgraphInto(g, {}, SubgraphOptions{}, &ws);
    EXPECT_EQ(0, sub.graph.num_nodes());
    std::vector<double> value, scratch;
    AbsorbingValueTruncated(sub.graph, {}, {}, 15, &ws.kernel, &value,
                            &scratch);
    EXPECT_TRUE(value.empty());
  }
}

// Apply must also be layout-invariant, bit for bit: the sparse push runs
// in original id space off the graph's own CSR on every plan, and the
// dense pull preserves each row's entry order through the permutation.
// (kSimple is row-stochastic-only, which no Apply caller uses.)
TEST(WalkKernelTest, ApplyBitIdenticalAcrossBlockedPlans) {
  const BipartiteGraph g = RandomGraph(45, 35, 0.12, 35000, 3, 2);
  const int32_t n = g.num_nodes();
  std::vector<double> dense(n), restart(n), sparse(n, 0.0);
  for (int32_t v = 0; v < n; ++v) {
    dense[v] = 0.25 + 0.5 * ((v * 2654435761u) % 97) / 97.0;
    restart[v] = v % 5 == 0 ? 0.2 : 0.0;
  }
  sparse[g.UserNode(7)] = 1.0;  // frontier of one → the push path
  for (WalkKernel::Normalization norm :
       {WalkKernel::Normalization::kColumnStochastic,
        WalkKernel::Normalization::kRaw}) {
    WalkKernel base;  // auto plan, dispatched ISA
    base.BuildTransitions(g, norm);
    std::vector<double> y_dense(n), y_sparse(n);
    base.Apply(0.85, dense.data(), 0.15, restart.data(), y_dense.data());
    base.Apply(0.5, sparse.data(), 0.0, nullptr, y_sparse.data());
    for (bool generic : {false, true}) {
      for (WalkKernel::SweepMode plan :
           {WalkKernel::SweepMode::kBlocked,
            WalkKernel::SweepMode::kBlockedReordered}) {
        WalkKernel k;
        if (generic) k.ForceGenericIsaForTesting();
        k.ForcePlanForTesting(plan);
        k.BuildTransitions(g, norm);
        const std::string label = std::string(k.sweep_strategy()) +
                                  (generic ? "/generic" : "") +
                                  (norm == WalkKernel::Normalization::kRaw
                                       ? " raw"
                                       : " colstoch");
        std::vector<double> ya(n), yb(n);
        k.Apply(0.85, dense.data(), 0.15, restart.data(), ya.data());
        k.Apply(0.5, sparse.data(), 0.0, nullptr, yb.data());
        for (int32_t v = 0; v < n; ++v) {
          EXPECT_EQ(y_dense[v], ya[v]) << label << " dense node " << v;
          EXPECT_EQ(y_sparse[v], yb[v]) << label << " sparse node " << v;
        }
      }
    }
  }
}

// Eight workers, each with a private kernel sweeping the SAME shared
// WalkLayout (the SubgraphCache steady state: one payload, many adopting
// threads), must all match the single-threaded identity-order sweep bit
// for bit. The layout is read-only after build; this pins that no sweep
// mutates shared state.
TEST(WalkKernelTest, SharedLayoutParityAtOneAndEightThreads) {
  const BipartiteGraph g = RandomGraph(120, 100, 0.05, 36000, 4, 3);
  const int32_t n = g.num_nodes();
  const auto absorbing = RandomAbsorbing(n, 0.15, 36001);
  const auto costs = RandomCosts(n, 36002);
  constexpr int kTau = 15;

  WalkKernel identity;
  identity.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
  identity.CompileAbsorbingSweep(absorbing, costs);
  std::vector<double> expected_full, scratch, expected_rank;
  identity.SweepTruncated(kTau, &expected_full, &scratch);
  identity.SweepTruncatedItemValues(kTau, &expected_rank);

  auto layout = std::make_shared<WalkLayout>();
  BuildWalkLayout(g, /*with_row_prob=*/true, layout.get());

  for (size_t threads : {size_t{1}, size_t{8}}) {
    std::vector<std::vector<double>> full(threads), rank(threads);
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        WalkKernel k;
        k.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic,
                           layout);
        k.CompileAbsorbingSweep(absorbing, costs);
        std::vector<double> s;
        k.SweepTruncated(kTau, &full[t], &s);
        k.SweepTruncatedItemValues(kTau, &rank[t]);
      });
    }
    for (auto& th : pool) th.join();
    for (size_t t = 0; t < threads; ++t) {
      ASSERT_EQ(expected_full.size(), full[t].size()) << threads << "t";
      for (size_t v = 0; v < expected_full.size(); ++v) {
        EXPECT_EQ(expected_full[v], full[t][v])
            << threads << "t worker " << t << " node " << v;
      }
      for (int32_t v = g.num_users(); v < n; ++v) {
        EXPECT_EQ(expected_rank[v], rank[t][v])
            << threads << "t worker " << t << " item row " << v;
      }
    }
  }
}

// The fused multi-query sweep's contract: lane q of the strided value
// block is bit-identical to a sequential SweepTruncatedItemValues of query
// q — across every execution plan, both ISA flavours, ragged widths (the
// lane tail past the last multiple of 4), mixed per-query absorbing sets,
// and odd/even iteration counts.
TEST(WalkKernelTest, FusedBatchSweepBitIdenticalToSequential) {
  const WalkKernel::SweepMode plans[] = {
      WalkKernel::SweepMode::kSimple,
      WalkKernel::SweepMode::kBlocked,
      WalkKernel::SweepMode::kBlockedReordered,
  };
  uint64_t seed = 90000;
  const BipartiteGraph g = RandomGraph(90, 110, 0.10, ++seed, 5, 6);
  const int32_t n = g.num_nodes();
  const auto costs = RandomCosts(n, ++seed);
  for (int width : {1, 2, 3, 4, 5, 7, 8, 11, 16, 17}) {
    std::vector<std::vector<bool>> absorbing;
    for (int q = 0; q < width; ++q) {
      absorbing.push_back(RandomAbsorbing(n, 0.15, seed + 100 + q));
    }
    for (bool generic : {false, true}) {
      for (WalkKernel::SweepMode plan : plans) {
        for (int tau : {1, 2, 7, 16}) {
          WalkKernel k;
          if (generic) k.ForceGenericIsaForTesting();
          k.ForcePlanForTesting(plan);
          k.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
          k.CompileAbsorbingSweepBatch(absorbing, costs);
          std::vector<double> block;
          k.SweepTruncatedItemValuesBatch(tau, &block);
          ASSERT_EQ(static_cast<size_t>(n) * width, block.size());
          for (int q = 0; q < width; ++q) {
            k.CompileAbsorbingSweep(absorbing[q], costs);
            std::vector<double> seq;
            k.SweepTruncatedItemValues(tau, &seq);
            for (int32_t v = g.num_users(); v < n; ++v) {
              ASSERT_EQ(seq[v], block[static_cast<size_t>(v) * width + q])
                  << k.isa_name() << "/" << k.sweep_strategy() << " width "
                  << width << " tau " << tau << " lane " << q << " item row "
                  << v;
            }
          }
        }
      }
    }
  }
}

// Degenerate batches: empty seed subgraph, zero iterations, a lane whose
// absorbing set covers every node, and width 1 (the fused path must be a
// drop-in for the sequential sweep even when nothing fuses).
TEST(WalkKernelTest, FusedBatchHandlesEmptyAndAllAbsorbingLanes) {
  const BipartiteGraph empty = BipartiteGraph::FromAdjacency(0, 0, {});
  for (WalkKernel::SweepMode plan :
       {WalkKernel::SweepMode::kSimple, WalkKernel::SweepMode::kBlocked,
        WalkKernel::SweepMode::kBlockedReordered}) {
    WalkKernel k;
    k.ForcePlanForTesting(plan);
    k.BuildTransitions(empty, WalkKernel::Normalization::kRowStochastic);
    k.CompileAbsorbingSweepBatch({{}, {}, {}}, {});
    std::vector<double> block{1.0, 2.0};
    k.SweepTruncatedItemValuesBatch(15, &block);
    EXPECT_TRUE(block.empty());
  }

  const BipartiteGraph g = RandomGraph(30, 20, 0.2, 91001, 2, 3);
  const int32_t n = g.num_nodes();
  const auto costs = RandomCosts(n, 91002);
  std::vector<std::vector<bool>> absorbing;
  absorbing.push_back(std::vector<bool>(n, true));   // everything absorbs
  absorbing.push_back(std::vector<bool>(n, false));  // nothing absorbs
  absorbing.push_back(RandomAbsorbing(n, 0.3, 91003));
  WalkKernel k;
  k.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
  k.CompileAbsorbingSweepBatch(absorbing, costs);
  std::vector<double> block;
  k.SweepTruncatedItemValuesBatch(0, &block);
  for (double x : block) EXPECT_EQ(0.0, x);
  k.SweepTruncatedItemValuesBatch(15, &block);
  for (int q = 0; q < 3; ++q) {
    k.CompileAbsorbingSweep(absorbing[q], costs);
    std::vector<double> seq;
    k.SweepTruncatedItemValues(15, &seq);
    for (int32_t v = g.num_users(); v < n; ++v) {
      ASSERT_EQ(seq[v], block[static_cast<size_t>(v) * 3 + q])
          << "lane " << q << " item row " << v;
    }
  }
}

// Eight workers fused-sweeping one shared adopted plan concurrently (the
// grouped-QueryBatch steady state) must each match the single-threaded
// sequential sweeps bit for bit.
TEST(WalkKernelTest, FusedBatchSharedPlanParityAtOneAndEightThreads) {
  const BipartiteGraph g = RandomGraph(120, 100, 0.05, 92000, 4, 3);
  const int32_t n = g.num_nodes();
  const auto costs = RandomCosts(n, 92001);
  constexpr int kTau = 15;
  constexpr int kWidth = 5;
  std::vector<std::vector<bool>> absorbing;
  for (int q = 0; q < kWidth; ++q) {
    absorbing.push_back(RandomAbsorbing(n, 0.15, 92002 + q));
  }

  std::vector<std::vector<double>> expected(kWidth);
  {
    WalkKernel identity;
    identity.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
    for (int q = 0; q < kWidth; ++q) {
      identity.CompileAbsorbingSweep(absorbing[q], costs);
      identity.SweepTruncatedItemValues(kTau, &expected[q]);
    }
  }

  auto layout = std::make_shared<WalkLayout>();
  BuildWalkLayout(g, /*with_row_prob=*/true, layout.get());
  auto plan = std::make_shared<WalkPlan>();
  plan->Build(g, WalkNormalization::kRowStochastic, layout);

  for (size_t threads : {size_t{1}, size_t{8}}) {
    std::vector<std::vector<double>> blocks(threads);
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        WalkKernel k;
        k.AdoptPlan(plan);
        k.CompileAbsorbingSweepBatch(absorbing, costs);
        k.SweepTruncatedItemValuesBatch(kTau, &blocks[t]);
      });
    }
    for (auto& th : pool) th.join();
    for (size_t t = 0; t < threads; ++t) {
      ASSERT_EQ(static_cast<size_t>(n) * kWidth, blocks[t].size());
      for (int q = 0; q < kWidth; ++q) {
        for (int32_t v = g.num_users(); v < n; ++v) {
          EXPECT_EQ(expected[q][v],
                    blocks[t][static_cast<size_t>(v) * kWidth + q])
              << threads << "t worker " << t << " lane " << q << " item row "
              << v;
        }
      }
    }
  }
}

// The kernel serves every production path; sequential and batch results
// must therefore stay bit-identical at any thread count.
TEST(WalkKernelTest, RecommenderBatchParityAtOneAndEightThreads) {
  SyntheticSpec spec;
  spec.num_users = 90;
  spec.num_items = 70;
  spec.mean_user_degree = 9;
  spec.min_user_degree = 3;
  spec.num_genres = 5;
  spec.seed = 777;
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  const Dataset& train = data->dataset;

  std::vector<std::unique_ptr<Recommender>> suite;
  suite.push_back(std::make_unique<HittingTimeRecommender>());
  suite.push_back(std::make_unique<AbsorbingTimeRecommender>());
  AbsorbingCostOptions ac;
  suite.push_back(std::make_unique<AbsorbingCostRecommender>(
      EntropySource::kItemBased, ac));
  for (auto& rec : suite) ASSERT_TRUE(rec->Fit(train).ok()) << rec->name();

  std::vector<UserId> users;
  for (UserId u = 0; u < 40; ++u) users.push_back(u);
  for (const auto& rec : suite) {
    std::vector<std::vector<ScoredItem>> sequential;
    for (UserId u : users) {
      auto top = rec->RecommendTopK(u, 10);
      ASSERT_TRUE(top.ok()) << rec->name() << " user " << u;
      sequential.push_back(std::move(top).value());
    }
    for (size_t threads : {size_t{1}, size_t{8}}) {
      BatchOptions options;
      options.num_threads = threads;
      const auto batch = rec->RecommendBatch(users, 10, options);
      ASSERT_EQ(users.size(), batch.size());
      for (size_t i = 0; i < users.size(); ++i) {
        ASSERT_TRUE(batch[i].ok()) << rec->name();
        const auto& expected = sequential[i];
        const auto& actual = *batch[i];
        ASSERT_EQ(expected.size(), actual.size())
            << rec->name() << " @" << threads << "t user " << users[i];
        for (size_t k = 0; k < expected.size(); ++k) {
          EXPECT_EQ(expected[k].item, actual[k].item)
              << rec->name() << " @" << threads << "t user " << users[i];
          EXPECT_EQ(expected[k].score, actual[k].score)
              << rec->name() << " @" << threads << "t user " << users[i];
        }
      }
    }
  }
}

}  // namespace
}  // namespace longtail
