#include "baselines/lda_recommender.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

LdaOptions FastOptions() {
  LdaOptions options;
  options.num_topics = 2;
  options.iterations = 40;
  options.seed = 3;
  return options;
}

TEST(LdaRecommenderTest, FitTrainsAndRecommends) {
  Dataset d = MakeFigure2Dataset();
  LdaRecommender rec(FastOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 4u);
  for (const auto& si : *top) {
    EXPECT_FALSE(d.HasRating(testing::kU5, si.item));
    EXPECT_GT(si.score, 0.0);
  }
}

TEST(LdaRecommenderTest, AdoptModelSkipsTraining) {
  Dataset d = MakeFigure2Dataset();
  auto model = LdaModel::Train(d, FastOptions());
  ASSERT_TRUE(model.ok());
  const double expected = model->Score(testing::kU5, testing::kM1);
  LdaRecommender rec(FastOptions());
  rec.AdoptModel(std::move(model).value());
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM1};
  auto scores = rec.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], expected);
}

TEST(LdaRecommenderTest, AdoptedModelDimensionMismatchRejected) {
  Dataset d = MakeFigure2Dataset();
  auto small = Dataset::Create(2, 2, {{0, 0, 5.0f}, {1, 1, 4.0f}});
  ASSERT_TRUE(small.ok());
  auto model = LdaModel::Train(*small, FastOptions());
  ASSERT_TRUE(model.ok());
  LdaRecommender rec(FastOptions());
  rec.AdoptModel(std::move(model).value());
  EXPECT_FALSE(rec.Fit(d).ok());
}

TEST(LdaRecommenderTest, ScoresMatchModel) {
  Dataset d = MakeFigure2Dataset();
  LdaRecommender rec(FastOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  for (ItemId i = 0; i < d.num_items(); ++i) {
    const std::vector<ItemId> items = {i};
    auto scores = rec.ScoreItems(testing::kU1, items);
    ASSERT_TRUE(scores.ok());
    EXPECT_DOUBLE_EQ((*scores)[0], rec.model().Score(testing::kU1, i));
  }
}

TEST(LdaRecommenderTest, ErrorsBeforeFit) {
  LdaRecommender rec(FastOptions());
  EXPECT_FALSE(rec.RecommendTopK(0, 1).ok());
}

TEST(LdaRecommenderTest, NameIsLDA) {
  LdaRecommender rec(FastOptions());
  EXPECT_EQ(rec.name(), "LDA");
}

}  // namespace
}  // namespace longtail
