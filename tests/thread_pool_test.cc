// The free ParallelFor — the codebase's fan-out primitive — now runs on
// the process-lifetime ServingPool instead of spinning a fresh ThreadPool
// per call (that construction path is gone). These tests pin down the
// contract call sites rely on: every index exactly once, serial fallback
// order, balanced coverage under skew, and reusability across calls.
// Pool-level semantics (caller participation, re-entrancy, concurrent
// batches) live in serving_pool_test.cc.
#include "util/serving_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace longtail {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(
      5, [&](size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, SumMatchesSerial) {
  const size_t n = 100000;
  std::atomic<long long> sum{0};
  ParallelFor(n, [&](size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); }, 64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Heavily uneven task sizes: dynamic claiming must still cover every index
// exactly once when some indices cost orders of magnitude more than others
// (the batch engine sees this shape with skewed subgraphs).
TEST(ParallelForTest, UnevenTaskSizesStress) {
  const size_t n = 2000;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<long long> checksum{0};
  ParallelFor(
      n,
      [&](size_t i) {
        volatile long long sink = 0;
        const long long spins = static_cast<long long>(i % 97) * (i % 97);
        for (long long s = 0; s < spins; ++s) sink = sink + s;
        hits[i].fetch_add(1);
        checksum.fetch_add(static_cast<long long>(i));
      },
      8);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(checksum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

// Back-to-back calls reuse the same long-lived pool; no state leaks from
// one call into the next.
TEST(ParallelForTest, ReusableAcrossCalls) {
  std::atomic<int> counter{0};
  ParallelFor(100, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
  ParallelFor(50, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 150);
  ParallelFor(1, [&](size_t i) { counter.fetch_add(i == 0 ? 1 : 1000); });
  EXPECT_EQ(counter.load(), 151);
}

}  // namespace
}  // namespace longtail
