#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace longtail {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(
      5, [&](size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, SumMatchesSerial) {
  const size_t n = 100000;
  std::atomic<long long> sum{0};
  ParallelFor(n, [&](size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); }, 64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace longtail
