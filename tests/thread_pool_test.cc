#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace longtail {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// Stress with heavily uneven task sizes: dynamic chunking must cover every
// index exactly once even when some indices cost orders of magnitude more
// than others (the batch engine sees this shape with skewed subgraphs).
TEST(ThreadPoolParallelForTest, UnevenTaskSizesStress) {
  ThreadPool pool(8);
  const size_t n = 2000;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<long long> checksum{0};
  pool.ParallelFor(n, [&](size_t i) {
    // Work skew: index i spins proportional to (i % 97)^2, so a few
    // indices dominate the runtime.
    volatile long long sink = 0;
    const long long spins = static_cast<long long>(i % 97) * (i % 97);
    for (long long s = 0; s < spins; ++s) sink += s;
    hits[i].fetch_add(1);
    checksum.fetch_add(static_cast<long long>(i));
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(checksum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

// The pool must stay usable for Submit/Wait and further ParallelFor calls
// after a ParallelFor completes.
TEST(ThreadPoolParallelForTest, ReusableAfterParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.ParallelFor(100, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
  pool.ParallelFor(50, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 151);
}

TEST(ThreadPoolParallelForTest, ZeroAndSingleIteration) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(
      5, [&](size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, SumMatchesSerial) {
  const size_t n = 100000;
  std::atomic<long long> sum{0};
  ParallelFor(n, [&](size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); }, 64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace longtail
