// Parameterized property sweeps over the core Markov machinery and the
// recommenders — invariants that must hold for any configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/entropy.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "graph/markov.h"
#include "graph/random_walk.h"
#include "test_util.h"

namespace longtail {
namespace {

// ------------------------------------------------------------------------
// Property: on random synthetic graphs, for any absorbing set S and any S'
// ⊇ S, AT(S'|i) ≤ AT(S|i); truncation is monotone in τ and below exact.

struct WalkCase {
  uint64_t seed;
  int num_users;
  int num_items;
  double degree;
};

class MarkovPropertyTest : public ::testing::TestWithParam<WalkCase> {
 protected:
  Dataset MakeData() const {
    const WalkCase& wc = GetParam();
    SyntheticSpec spec;
    spec.num_users = wc.num_users;
    spec.num_items = wc.num_items;
    spec.mean_user_degree = wc.degree;
    spec.min_user_degree = 3;
    spec.num_genres = 4;
    spec.seed = wc.seed;
    auto data = GenerateSyntheticData(spec);
    EXPECT_TRUE(data.ok());
    return std::move(data).value().dataset;
  }
};

TEST_P(MarkovPropertyTest, LargerAbsorbingSetShrinksAbsorbingTime) {
  Dataset d = MakeData();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> small(g.num_nodes(), false);
  small[g.ItemNode(0)] = true;
  std::vector<bool> large = small;
  large[g.ItemNode(1)] = true;
  large[g.ItemNode(2)] = true;
  const auto at_small = AbsorbingTimeTruncated(g, small, 30);
  const auto at_large = AbsorbingTimeTruncated(g, large, 30);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(at_large[v], at_small[v] + 1e-9) << "node " << v;
  }
}

TEST_P(MarkovPropertyTest, TruncationMonotoneAndBoundedByExact) {
  Dataset d = MakeData();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(0)] = true;
  auto exact = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(exact.ok());
  std::vector<double> prev(g.num_nodes(), 0.0);
  for (int tau : {1, 3, 7, 15, 40}) {
    const auto t = AbsorbingTimeTruncated(g, absorbing, tau);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_GE(t[v], prev[v] - 1e-9);
      if (std::isfinite((*exact)[v])) {
        EXPECT_LE(t[v], (*exact)[v] + 1e-6);
      }
    }
    prev = t;
  }
}

TEST_P(MarkovPropertyTest, StationaryDistributionIsFixedPoint) {
  Dataset d = MakeData();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  const auto pi = StationaryDistribution(g);
  CsrMatrix p = TransitionMatrix(g);
  std::vector<double> next;
  p.MultiplyTranspose(pi, &next);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(next[v], pi[v], 1e-10);
  }
}

TEST_P(MarkovPropertyTest, ExactSolutionSatisfiesRecurrence) {
  // Spot-check Eq. 6: AT(S|i) = 1 + Σ p_ij AT(S|j) on every transient node.
  Dataset d = MakeData();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.ItemNode(0)] = true;
  absorbing[g.UserNode(0)] = true;
  auto at = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(at.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (absorbing[v] || !std::isfinite((*at)[v])) continue;
    const auto nbrs = g.Neighbors(v);
    const auto wts = g.Weights(v);
    const double deg = g.WeightedDegree(v);
    if (deg <= 0) continue;
    double rhs = 1.0;
    for (size_t k = 0; k < nbrs.size(); ++k) {
      rhs += wts[k] / deg * (*at)[nbrs[k]];
    }
    EXPECT_NEAR((*at)[v], rhs, 1e-6);
  }
}

constexpr WalkCase kWalkCases[] = {{1, 40, 30, 8.0},
                                   {2, 80, 50, 6.0},
                                   {3, 60, 90, 10.0},
                                   {4, 25, 25, 5.0},
                                   {5, 120, 40, 7.0}};

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MarkovPropertyTest,
                         ::testing::ValuesIn(kWalkCases));

// ------------------------------------------------------------------------
// Property: every recommender in the family honours the query contract for
// all (algorithm, µ, τ) combinations.

struct RecCase {
  int algorithm;  // 0=HT 1=AT 2=AC1 3=AC2
  int tau;
  int32_t mu;
};

class RecommenderPropertyTest : public ::testing::TestWithParam<RecCase> {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 60;
    spec.num_items = 50;
    spec.mean_user_degree = 10;
    spec.min_user_degree = 4;
    spec.num_genres = 4;
    spec.seed = 500;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  std::unique_ptr<Recommender> MakeRecommender() const {
    const RecCase& rc = GetParam();
    GraphWalkOptions walk;
    walk.iterations = rc.tau;
    walk.max_subgraph_items = rc.mu;
    AbsorbingCostOptions ac;
    ac.walk = walk;
    ac.lda.num_topics = 3;
    ac.lda.iterations = 10;
    switch (rc.algorithm) {
      case 0:
        return std::make_unique<HittingTimeRecommender>(walk);
      case 1:
        return std::make_unique<AbsorbingTimeRecommender>(walk);
      case 2:
        return std::make_unique<AbsorbingCostRecommender>(
            EntropySource::kItemBased, ac);
      default:
        return std::make_unique<AbsorbingCostRecommender>(
            EntropySource::kTopicBased, ac);
    }
  }

  static Dataset* data_;
};

Dataset* RecommenderPropertyTest::data_ = nullptr;

TEST_P(RecommenderPropertyTest, TopKContractHolds) {
  auto rec = MakeRecommender();
  ASSERT_TRUE(rec->Fit(*data_).ok());
  for (UserId u = 0; u < 10; ++u) {
    auto top = rec->RecommendTopK(u, 8);
    ASSERT_TRUE(top.ok()) << rec->name() << " user " << u;
    EXPECT_LE(top->size(), 8u);
    // Sorted by score descending; no rated items; no duplicates.
    for (size_t k = 0; k < top->size(); ++k) {
      EXPECT_FALSE(data_->HasRating(u, (*top)[k].item));
      if (k > 0) {
        EXPECT_GE((*top)[k - 1].score, (*top)[k].score);
        EXPECT_NE((*top)[k - 1].item, (*top)[k].item);
      }
    }
  }
}

TEST_P(RecommenderPropertyTest, ScoreItemsAgreesWithTopK) {
  auto rec = MakeRecommender();
  ASSERT_TRUE(rec->Fit(*data_).ok());
  // With a tiny µ some users' subgraphs hold only their own rated items and
  // legitimately yield empty lists; find a user that produces candidates.
  int covered = 0;
  for (UserId u = 0; u < data_->num_users() && covered < 5; ++u) {
    auto top = rec->RecommendTopK(u, 5);
    ASSERT_TRUE(top.ok());
    if (top->empty()) continue;
    ++covered;
    std::vector<ItemId> items;
    for (const auto& si : *top) items.push_back(si.item);
    auto scores = rec->ScoreItems(u, items);
    ASSERT_TRUE(scores.ok());
    for (size_t k = 0; k < items.size(); ++k) {
      EXPECT_NEAR((*scores)[k], (*top)[k].score, 1e-9) << rec->name();
    }
  }
  EXPECT_GE(covered, 1) << rec->name() << " produced no lists at all";
}

TEST_P(RecommenderPropertyTest, DeterministicAcrossInstances) {
  auto r1 = MakeRecommender();
  auto r2 = MakeRecommender();
  ASSERT_TRUE(r1->Fit(*data_).ok());
  ASSERT_TRUE(r2->Fit(*data_).ok());
  auto t1 = r1->RecommendTopK(5, 6);
  auto t2 = r2->RecommendTopK(5, 6);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t1->size(), t2->size());
  for (size_t k = 0; k < t1->size(); ++k) {
    EXPECT_EQ((*t1)[k].item, (*t2)[k].item);
    EXPECT_DOUBLE_EQ((*t1)[k].score, (*t2)[k].score);
  }
}

constexpr RecCase kRecCases[] = {{0, 5, 0},   {0, 15, 20}, {1, 5, 0},
                                 {1, 15, 20}, {1, 30, 10}, {2, 15, 0},
                                 {2, 10, 15}, {3, 15, 0},  {3, 10, 15}};

std::string RecCaseName(const ::testing::TestParamInfo<RecCase>& info) {
  static const char* const kNames[] = {"HT", "AT", "AC1", "AC2"};
  return std::string(kNames[info.param.algorithm]) + "_tau" +
         std::to_string(info.param.tau) + "_mu" +
         std::to_string(info.param.mu);
}

INSTANTIATE_TEST_SUITE_P(AlgorithmsByTauMu, RecommenderPropertyTest,
                         ::testing::ValuesIn(kRecCases), RecCaseName);

// ------------------------------------------------------------------------
// Property: entropy bounds hold for every user across generator settings.

class EntropyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EntropyPropertyTest, ItemEntropyBounds) {
  SyntheticSpec spec;
  spec.num_users = 50;
  spec.num_items = 60;
  spec.mean_user_degree = 12;
  spec.min_user_degree = 2;
  spec.seed = GetParam();
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  const auto entropy = ItemBasedUserEntropy(data->dataset);
  for (UserId u = 0; u < data->dataset.num_users(); ++u) {
    EXPECT_GE(entropy[u], 0.0);
    EXPECT_LE(entropy[u],
              std::log(static_cast<double>(data->dataset.UserDegree(u))) +
                  1e-9)
        << "entropy exceeds log(degree) for user " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropyPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace longtail
