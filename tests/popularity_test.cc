#include "baselines/popularity.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

TEST(PopularityRecommenderTest, RanksByRatingCount) {
  Dataset d = MakeFigure2Dataset();
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  // U5 rated M2, M3. Remaining popularities: M1=3, M5=2, M6=2, M4=1.
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 4u);
  EXPECT_EQ((*top)[0].item, testing::kM1);
  EXPECT_EQ((*top)[3].item, testing::kM4);
}

TEST(PopularityRecommenderTest, ScoresAreCounts) {
  Dataset d = MakeFigure2Dataset();
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM1, testing::kM4};
  auto scores = rec.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], 3.0);
  EXPECT_DOUBLE_EQ((*scores)[1], 1.0);
}

TEST(PopularityRecommenderTest, SameRankingForAllUsers) {
  Dataset d = MakeFigure2Dataset();
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM1, testing::kM4, testing::kM5};
  auto s1 = rec.ScoreItems(testing::kU1, items);
  auto s2 = rec.ScoreItems(testing::kU4, items);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(PopularityRecommenderTest, ExcludesRated) {
  Dataset d = MakeFigure2Dataset();
  PopularityRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU2, 6);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 1u);  // U2 rated 5 of 6 items.
  EXPECT_EQ((*top)[0].item, testing::kM4);
}

TEST(PopularityRecommenderTest, ErrorsBeforeFitAndOnBadInput) {
  PopularityRecommender rec;
  EXPECT_FALSE(rec.RecommendTopK(0, 1).ok());
  Dataset d = MakeFigure2Dataset();
  ASSERT_TRUE(rec.Fit(d).ok());
  EXPECT_FALSE(rec.Fit(d).ok());
  EXPECT_FALSE(rec.RecommendTopK(17, 1).ok());
  const std::vector<ItemId> bad = {-1};
  EXPECT_FALSE(rec.ScoreItems(0, bad).ok());
}

}  // namespace
}  // namespace longtail
