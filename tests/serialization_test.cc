#include "data/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/generator.h"
#include "test_util.h"

namespace longtail {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DatasetSerializationTest, RoundTripFigure2) {
  Dataset original = testing::MakeFigure2Dataset();
  const std::string path = TempPath("fig2.ltds");
  ASSERT_TRUE(SaveDatasetBinary(original, path).ok());
  auto loaded = LoadDatasetBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), original.num_users());
  EXPECT_EQ(loaded->num_items(), original.num_items());
  EXPECT_EQ(loaded->num_ratings(), original.num_ratings());
  for (UserId u = 0; u < original.num_users(); ++u) {
    for (ItemId i = 0; i < original.num_items(); ++i) {
      EXPECT_FLOAT_EQ(loaded->GetRating(u, i), original.GetRating(u, i));
    }
  }
}

TEST(DatasetSerializationTest, RoundTripWithMetadata) {
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.02));
  ASSERT_TRUE(data.ok());
  const Dataset& original = data->dataset;
  const std::string path = TempPath("meta.ltds");
  ASSERT_TRUE(SaveDatasetBinary(original, path).ok());
  auto loaded = LoadDatasetBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_genres, original.num_genres);
  EXPECT_EQ(loaded->item_genres, original.item_genres);
  EXPECT_EQ(loaded->item_categories, original.item_categories);
  EXPECT_EQ(loaded->user_genre_prefs, original.user_genre_prefs);
  EXPECT_EQ(loaded->item_labels, original.item_labels);
}

TEST(DatasetSerializationTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.ltds");
  std::ofstream out(path, std::ios::binary);
  out << "NOTMAGIC and some trailing bytes to get past the header";
  out.close();
  auto loaded = LoadDatasetBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(DatasetSerializationTest, RejectsTruncatedFile) {
  Dataset original = testing::MakeFigure2Dataset();
  const std::string path = TempPath("trunc.ltds");
  ASSERT_TRUE(SaveDatasetBinary(original, path).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_FALSE(LoadDatasetBinary(path).ok());
}

TEST(DatasetSerializationTest, RejectsBitFlip) {
  Dataset original = testing::MakeFigure2Dataset();
  const std::string path = TempPath("flip.ltds");
  ASSERT_TRUE(SaveDatasetBinary(original, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit in the middle of the payload (past the header).
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  auto loaded = LoadDatasetBinary(path);
  // Either the checksum catches it, or (if the flip hit a rating value and
  // stayed structurally valid) validation fails; it must never load with a
  // silent wrong value AND pass the checksum.
  EXPECT_FALSE(loaded.ok());
}

TEST(DatasetSerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadDatasetBinary(TempPath("nope.ltds")).ok());
}

TEST(LdaSerializationTest, RoundTripPreservesScores) {
  Dataset d = testing::MakeFigure2Dataset();
  LdaOptions options;
  options.num_topics = 3;
  options.iterations = 20;
  auto model = LdaModel::Train(d, options);
  ASSERT_TRUE(model.ok());
  const std::string path = TempPath("model.ltlm");
  ASSERT_TRUE(SaveLdaModel(*model, path).ok());
  auto loaded = LoadLdaModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_topics(), 3);
  for (UserId u = 0; u < d.num_users(); ++u) {
    for (ItemId i = 0; i < d.num_items(); ++i) {
      EXPECT_DOUBLE_EQ(loaded->Score(u, i), model->Score(u, i));
    }
  }
}

TEST(LdaSerializationTest, RejectsDatasetFileAsModel) {
  Dataset d = testing::MakeFigure2Dataset();
  const std::string path = TempPath("confused.ltds");
  ASSERT_TRUE(SaveDatasetBinary(d, path).ok());
  EXPECT_FALSE(LoadLdaModel(path).ok());
}

TEST(LdaModelFromParametersTest, ValidatesDistributions) {
  DenseMatrix theta(2, 2, 0.5);
  DenseMatrix phi(2, 3, 1.0 / 3.0);
  EXPECT_TRUE(LdaModel::FromParameters(theta, phi).ok());
  DenseMatrix bad_theta(2, 2, 0.9);  // rows sum to 1.8
  EXPECT_FALSE(LdaModel::FromParameters(bad_theta, phi).ok());
  DenseMatrix negative(2, 3, 1.0 / 3.0);
  negative(0, 0) = -0.1;
  negative(0, 1) = 0.6 + 1.0 / 6.0;  // keep the row sum at 1
  EXPECT_FALSE(LdaModel::FromParameters(theta, negative).ok());
  DenseMatrix mismatched(3, 3, 1.0 / 3.0);  // K=3 vs theta K=2
  EXPECT_FALSE(LdaModel::FromParameters(theta, mismatched).ok());
}

}  // namespace
}  // namespace longtail
