#include "util/string_util.h"

#include <gtest/gtest.h>

namespace longtail {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitBySeparatorTest, MovieLensDoubleColon) {
  EXPECT_EQ(SplitBySeparator("1::1193::5::978300760", "::"),
            (std::vector<std::string>{"1", "1193", "5", "978300760"}));
}

TEST(SplitBySeparatorTest, EmptySeparatorReturnsWhole) {
  EXPECT_EQ(SplitBySeparator("abc", ""), (std::vector<std::string>{"abc"}));
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.425, 3), "0.425");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatWithCommasTest, GroupsDigits) {
  EXPECT_EQ(FormatWithCommas(13506215), "13,506,215");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("userId,movieId", "userId"));
  EXPECT_FALSE(StartsWith("user", "userId"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

}  // namespace
}  // namespace longtail
