#include "linalg/solvers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace longtail {
namespace {

// A: substochastic 2x2 walk block; solve x = A x + b.
CsrMatrix MakeContraction() {
  // [[0, 0.5], [0.5, 0]]
  auto m = CsrMatrix::FromTriplets(2, 2, {{0, 1, 0.5}, {1, 0, 0.5}});
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

TEST(FixedPointSolveTest, SolvesKnownSystem) {
  // x0 = 0.5 x1 + 1, x1 = 0.5 x0 + 1 → x = (2, 2).
  CsrMatrix a = MakeContraction();
  std::vector<double> x;
  auto report = FixedPointSolve(a, {1.0, 1.0}, &x);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
  EXPECT_NEAR(x[1], 2.0, 1e-8);
}

TEST(GaussSeidelSolveTest, SolvesKnownSystem) {
  CsrMatrix a = MakeContraction();
  std::vector<double> x;
  auto report = GaussSeidelSolve(a, {1.0, 1.0}, &x);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
  EXPECT_NEAR(x[1], 2.0, 1e-8);
}

TEST(GaussSeidelSolveTest, HandlesDiagonalEntries) {
  // x0 = 0.25 x0 + 0.5 x1 + 1; x1 = 0.5 x0 + 1.
  // Solution: x0 = 0.75 x0... solve: x0 - 0.25x0 - 0.5x1 = 1 →
  // 0.75 x0 - 0.5 x1 = 1; -0.5 x0 + x1 = 1 → x0 = 3, x1 = 2.5.
  auto a = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 0.25}, {0, 1, 0.5}, {1, 0, 0.5}});
  ASSERT_TRUE(a.ok());
  std::vector<double> x;
  auto report = GaussSeidelSolve(*a, {1.0, 1.0}, &x);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(x[0], 3.0, 1e-8);
  EXPECT_NEAR(x[1], 2.5, 1e-8);
}

TEST(GaussSeidelSolveTest, ConvergesFasterThanJacobi) {
  CsrMatrix a = MakeContraction();
  std::vector<double> x1, x2;
  auto jacobi = FixedPointSolve(a, {1.0, 1.0}, &x1);
  auto gs = GaussSeidelSolve(a, {1.0, 1.0}, &x2);
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(gs.ok());
  EXPECT_LE(gs->iterations, jacobi->iterations);
}

TEST(SolversTest, RejectNonSquare) {
  auto a = CsrMatrix::FromTriplets(2, 3, {{0, 0, 0.5}});
  ASSERT_TRUE(a.ok());
  std::vector<double> x;
  EXPECT_FALSE(FixedPointSolve(*a, {1.0, 1.0}, &x).ok());
  EXPECT_FALSE(GaussSeidelSolve(*a, {1.0, 1.0}, &x).ok());
  EXPECT_FALSE(ConjugateGradientSolve(*a, {1.0, 1.0}, &x).ok());
}

TEST(SolversTest, RejectRhsSizeMismatch) {
  CsrMatrix a = MakeContraction();
  std::vector<double> x;
  EXPECT_FALSE(FixedPointSolve(a, {1.0}, &x).ok());
}

TEST(SolversTest, MaxIterationsReported) {
  CsrMatrix a = MakeContraction();
  std::vector<double> x;
  SolverOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-300;
  auto report = FixedPointSolve(a, {1.0, 1.0}, &x, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->converged);
  EXPECT_EQ(report->iterations, 2);
}

TEST(ConjugateGradientTest, SolvesSpdSystem) {
  // [[4, 1], [1, 3]] x = [1, 2] → x = (1/11, 7/11).
  auto a = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  ASSERT_TRUE(a.ok());
  std::vector<double> x;
  auto report = ConjugateGradientSolve(*a, {1.0, 2.0}, &x);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-8);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-8);
}

TEST(ConjugateGradientTest, ConvergesInAtMostNIterationsExactArithmetic) {
  // CG on an n-dim SPD system converges in ≤ n iterations (plus rounding).
  const int n = 20;
  std::vector<Triplet> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, 1.0});
      t.push_back({i + 1, i, 1.0});
    }
  }
  auto a = CsrMatrix::FromTriplets(n, n, std::move(t));
  ASSERT_TRUE(a.ok());
  std::vector<double> b(n, 1.0);
  std::vector<double> x;
  auto report = ConjugateGradientSolve(*a, b, &x);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_LE(report->iterations, n + 2);
  // Verify residual.
  std::vector<double> ax;
  a->Multiply(x, &ax);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-7);
}

TEST(ConjugateGradientTest, RejectsIndefiniteMatrix) {
  auto a = CsrMatrix::FromTriplets(2, 2, {{0, 0, -1.0}, {1, 1, 1.0}});
  ASSERT_TRUE(a.ok());
  std::vector<double> x;
  EXPECT_FALSE(ConjugateGradientSolve(*a, {1.0, 1.0}, &x).ok());
}

}  // namespace
}  // namespace longtail
