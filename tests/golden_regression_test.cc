// Golden end-to-end regression: a fully seeded pipeline — synthetic
// corpus → long-tail split → fit HT/AT/AC1/AC2 → recall / diversity /
// long-tail coverage — pinned to committed golden values.
//
// Everything in the pipeline is deterministic (xoshiro RNG with explicit
// seeds, sequential metric folds), so any drift here means an intended
// algorithm change (re-baseline the constants below and say why in the
// commit) or an accidental behaviour change (a bug — the usual catch).
// Tolerances are tight but nonzero: the metrics are ratios of counts and
// tie-probability rationals, exactly representable sums, but the walk
// scores feeding the rankings are floating-point and entitled to vary in
// the last ulp across compilers.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "data/longtail_stats.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "graph/subgraph_cache.h"
#include "serving/model_registry.h"

namespace longtail {
namespace {

constexpr double kTol = 1e-9;

struct GoldenRow {
  const char* name;
  double recall_at_5;
  double recall_at_10;
  double diversity;
  double tail_coverage;
};

// ----------------------------------------------------------------- goldens
// Produced by this test's own pipeline at the seeds below; the test prints
// every actual, so re-baselining is running it once and copying the lines.
constexpr GoldenRow kGolden[] = {
    {"HT", 0.188034188034, 0.282051282051, 0.900000000000, 0.888888888889},
    {"AT", 0.051282051282, 0.136752136752, 0.731250000000, 0.506172839506},
    {"AC1", 0.025641025641, 0.051282051282, 0.656250000000, 0.345679012346},
    {"AC2", 0.051282051282, 0.128205128205, 0.743750000000, 0.530864197531},
};

class GoldenRegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.name = "golden";
    spec.num_users = 220;
    spec.num_items = 160;
    spec.mean_user_degree = 14;
    spec.min_user_degree = 4;
    spec.num_genres = 6;
    spec.seed = 20120530;
    auto generated = GenerateSyntheticData(spec);
    ASSERT_TRUE(generated.ok());

    LongTailSplitOptions split_options;
    split_options.num_test_cases = 150;
    split_options.min_rating = 4.0f;
    split_options.seed = 4000;
    auto split = MakeLongTailSplit(generated->dataset, split_options);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    split_ = new TrainTestSplit(std::move(split).value());

    users_ = new std::vector<UserId>(
        SampleTestUsers(split_->train, 80, 4, 2000));
    ASSERT_FALSE(users_->empty());
    tail_flags_ = new std::vector<bool>(TailItemFlags(split_->train));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete users_;
    delete tail_flags_;
    split_ = nullptr;
    users_ = nullptr;
    tail_flags_ = nullptr;
  }

  static std::unique_ptr<Recommender> Build(const std::string& name) {
    GraphWalkOptions walk;  // paper defaults: τ = 15, µ = 6000 (uncapped
                            // at this scale), weighted edges
    if (name == "HT") return std::make_unique<HittingTimeRecommender>(walk);
    if (name == "AT") return std::make_unique<AbsorbingTimeRecommender>(walk);
    AbsorbingCostOptions ac;
    ac.walk = walk;
    ac.lda.num_topics = 6;
    ac.lda.iterations = 30;
    return std::make_unique<AbsorbingCostRecommender>(
        name == "AC1" ? EntropySource::kItemBased
                      : EntropySource::kTopicBased,
        ac);
  }

  /// Distinct tail items recommended across all lists, over the catalog's
  /// tail size: how much of the long tail the algorithm surfaces at all.
  static double TailCoverage(const TopNLists& lists) {
    std::vector<bool> seen(tail_flags_->size(), false);
    for (const auto& list : lists.lists) {
      for (const ScoredItem& si : list) {
        if ((*tail_flags_)[si.item]) seen[si.item] = true;
      }
    }
    int64_t tail_total = 0;
    int64_t tail_seen = 0;
    for (size_t i = 0; i < seen.size(); ++i) {
      tail_total += (*tail_flags_)[i] ? 1 : 0;
      tail_seen += seen[i] ? 1 : 0;
    }
    return tail_total > 0 ? static_cast<double>(tail_seen) / tail_total : 0.0;
  }

  static TrainTestSplit* split_;
  static std::vector<UserId>* users_;
  static std::vector<bool>* tail_flags_;
};

TrainTestSplit* GoldenRegressionTest::split_ = nullptr;
std::vector<UserId>* GoldenRegressionTest::users_ = nullptr;
std::vector<bool>* GoldenRegressionTest::tail_flags_ = nullptr;

TEST_F(GoldenRegressionTest, MetricsMatchCommittedGoldens) {
  for (const GoldenRow& golden : kGolden) {
    std::unique_ptr<Recommender> rec = Build(golden.name);
    ASSERT_TRUE(rec->Fit(split_->train).ok()) << golden.name;

    RecallProtocolOptions recall_options;
    recall_options.num_decoys = 150;
    recall_options.max_n = 10;
    recall_options.num_threads = 1;
    auto curve =
        EvaluateRecall(*rec, split_->train, split_->test, recall_options);
    ASSERT_TRUE(curve.ok()) << golden.name << ": "
                            << curve.status().ToString();

    TopNListOptions list_options;
    list_options.k = 10;
    list_options.num_threads = 1;
    auto lists = ComputeTopNLists(*rec, *users_, list_options);
    ASSERT_TRUE(lists.ok()) << golden.name;
    const double diversity = DiversityOfLists(split_->train, *lists, 10);
    const double coverage = TailCoverage(*lists);

    // Always print the actuals so a legitimate re-baseline is a copy-paste.
    std::printf("golden %-4s recall@5=%.12f recall@10=%.12f "
                "diversity=%.12f tail_coverage=%.12f\n",
                golden.name, curve->At(5), curve->At(10), diversity,
                coverage);

    EXPECT_NEAR(curve->At(5), golden.recall_at_5, kTol) << golden.name;
    EXPECT_NEAR(curve->At(10), golden.recall_at_10, kTol) << golden.name;
    EXPECT_NEAR(diversity, golden.diversity, kTol) << golden.name;
    EXPECT_NEAR(coverage, golden.tail_coverage, kTol) << golden.name;
  }
}

// The goldens must also hold through a checkpoint round-trip: fit → save →
// registry cold-start → evaluate, pinning the loaded models to the same
// committed constants. Catches checkpoint drift — any chunk field that
// fails to round-trip (an option, a graph weight, an entropy) shifts a
// ranking somewhere in 80 users × 10 slots and lands outside kTol.
TEST_F(GoldenRegressionTest, GoldensSurviveCheckpointRoundTrip) {
  for (const GoldenRow& golden : kGolden) {
    std::unique_ptr<Recommender> fitted = Build(golden.name);
    ASSERT_TRUE(fitted->Fit(split_->train).ok()) << golden.name;
    const std::string path = ::testing::TempDir() + "/golden_" +
                             golden.name + ".ckpt";
    ASSERT_TRUE(SaveModelCheckpoint(*fitted, path).ok()) << golden.name;
    fitted.reset();  // Only the checkpoint survives the "restart".

    auto rec = LoadModelCheckpoint(path, split_->train);
    ASSERT_TRUE(rec.ok()) << golden.name << ": " << rec.status().ToString();
    std::remove(path.c_str());

    RecallProtocolOptions recall_options;
    recall_options.num_decoys = 150;
    recall_options.max_n = 10;
    recall_options.num_threads = 1;
    auto curve =
        EvaluateRecall(**rec, split_->train, split_->test, recall_options);
    ASSERT_TRUE(curve.ok()) << golden.name;

    TopNListOptions list_options;
    list_options.k = 10;
    list_options.num_threads = 1;
    auto lists = ComputeTopNLists(**rec, *users_, list_options);
    ASSERT_TRUE(lists.ok()) << golden.name;

    EXPECT_NEAR(curve->At(5), golden.recall_at_5, kTol) << golden.name;
    EXPECT_NEAR(curve->At(10), golden.recall_at_10, kTol) << golden.name;
    EXPECT_NEAR(DiversityOfLists(split_->train, *lists, 10),
                golden.diversity, kTol)
        << golden.name;
    EXPECT_NEAR(TailCoverage(*lists), golden.tail_coverage, kTol)
        << golden.name;
  }
}

// The golden pipeline itself must be insensitive to serving-layer
// configuration: same metrics through the shared pool at any thread count,
// with or without the subgraph cache. (Bit-level parity is enforced in
// batch_parity_test and subgraph_cache_test; this guards the end-to-end
// metric fold.)
TEST_F(GoldenRegressionTest, MetricsInvariantToThreadsAndCache) {
  std::unique_ptr<Recommender> rec = Build("AT");
  ASSERT_TRUE(rec->Fit(split_->train).ok());

  TopNListOptions base;
  base.k = 10;
  base.num_threads = 1;
  auto reference = ComputeTopNLists(*rec, *users_, base);
  ASSERT_TRUE(reference.ok());
  const double want_diversity = DiversityOfLists(split_->train, *reference, 10);
  const double want_coverage = TailCoverage(*reference);

  SubgraphCache cache;
  for (size_t threads : {1u, 4u}) {
    for (SubgraphCache* c : {static_cast<SubgraphCache*>(nullptr), &cache}) {
      TopNListOptions options;
      options.k = 10;
      options.num_threads = threads;
      options.subgraph_cache = c;
      auto lists = ComputeTopNLists(*rec, *users_, options);
      ASSERT_TRUE(lists.ok());
      EXPECT_EQ(DiversityOfLists(split_->train, *lists, 10), want_diversity)
          << threads << (c != nullptr ? " cached" : " uncached");
      EXPECT_EQ(TailCoverage(*lists), want_coverage)
          << threads << (c != nullptr ? " cached" : " uncached");
    }
  }
}

}  // namespace
}  // namespace longtail
