#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace longtail {
namespace {

TEST(SvdTest, DiagonalMatrixExact) {
  // diag(3, 2, 1) → singular values 3, 2, 1.
  auto a = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 3.0}, {1, 1, 2.0}, {2, 2, 1.0}});
  ASSERT_TRUE(a.ok());
  SvdOptions options;
  options.rank = 3;
  options.oversample = 0;
  auto svd = RandomizedSvd(*a, options);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-8);
  EXPECT_NEAR(svd->singular_values[1], 2.0, 1e-8);
  EXPECT_NEAR(svd->singular_values[2], 1.0, 1e-8);
}

TEST(SvdTest, RankOneMatrixRecovered) {
  // A = 2 * u vᵀ with u = e0+e1 (norm √2), v = e0 (norm 1) → σ = 2√2.
  auto a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0}, {1, 0, 2.0}});
  ASSERT_TRUE(a.ok());
  SvdOptions options;
  options.rank = 2;
  auto svd = RandomizedSvd(*a, options);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 2.0 * std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(svd->singular_values[1], 0.0, 1e-8);
}

TEST(SvdTest, ReconstructionErrorSmallForLowRankMatrix) {
  // Build a rank-3 random matrix (product of sparse random factors) and
  // check rank-3 truncated SVD reconstructs it.
  const int m = 40;
  const int n = 30;
  const int true_rank = 3;
  Rng rng(1234);
  std::vector<std::vector<double>> u(m, std::vector<double>(true_rank));
  std::vector<std::vector<double>> v(n, std::vector<double>(true_rank));
  for (auto& row : u) {
    for (auto& x : row) x = rng.NextGaussian();
  }
  for (auto& row : v) {
    for (auto& x : row) x = rng.NextGaussian();
  }
  std::vector<Triplet> triplets;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double val = 0.0;
      for (int k = 0; k < true_rank; ++k) val += u[i][k] * v[j][k];
      triplets.push_back({i, j, val});
    }
  }
  auto a = CsrMatrix::FromTriplets(m, n, std::move(triplets));
  ASSERT_TRUE(a.ok());

  SvdOptions options;
  options.rank = true_rank;
  options.power_iterations = 3;
  auto svd = RandomizedSvd(*a, options);
  ASSERT_TRUE(svd.ok());

  // || A - U Σ Vᵀ ||_F / || A ||_F should be tiny.
  double err = 0.0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double approx = 0.0;
      for (int k = 0; k < true_rank; ++k) {
        approx += svd->u(i, k) * svd->singular_values[k] * svd->v(j, k);
      }
      const double diff = approx - a->At(i, j);
      err += diff * diff;
    }
  }
  EXPECT_LT(std::sqrt(err) / a->FrobeniusNorm(), 1e-6);
}

TEST(SvdTest, SingularVectorsOrthonormal) {
  Rng rng(77);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 25; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (rng.NextDouble() < 0.3) {
        triplets.push_back({i, j, rng.NextDouble(1.0, 5.0)});
      }
    }
  }
  auto a = CsrMatrix::FromTriplets(25, 20, std::move(triplets));
  ASSERT_TRUE(a.ok());
  SvdOptions options;
  options.rank = 5;
  auto svd = RandomizedSvd(*a, options);
  ASSERT_TRUE(svd.ok());
  for (int c1 = 0; c1 < 5; ++c1) {
    for (int c2 = 0; c2 < 5; ++c2) {
      double dot_u = 0.0;
      for (int i = 0; i < 25; ++i) dot_u += svd->u(i, c1) * svd->u(i, c2);
      double dot_v = 0.0;
      for (int i = 0; i < 20; ++i) dot_v += svd->v(i, c1) * svd->v(i, c2);
      const double expected = c1 == c2 ? 1.0 : 0.0;
      EXPECT_NEAR(dot_u, expected, 1e-6);
      EXPECT_NEAR(dot_v, expected, 1e-6);
    }
  }
}

TEST(SvdTest, SingularValuesDescending) {
  Rng rng(99);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) {
      if (rng.NextDouble() < 0.2) {
        triplets.push_back({i, j, rng.NextDouble()});
      }
    }
  }
  auto a = CsrMatrix::FromTriplets(30, 30, std::move(triplets));
  ASSERT_TRUE(a.ok());
  SvdOptions options;
  options.rank = 8;
  auto svd = RandomizedSvd(*a, options);
  ASSERT_TRUE(svd.ok());
  for (int k = 1; k < 8; ++k) {
    EXPECT_GE(svd->singular_values[k - 1], svd->singular_values[k] - 1e-12);
  }
}

TEST(SvdTest, TopSingularValueMatchesPowerIteration) {
  Rng rng(55);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 25; ++j) {
      if (rng.NextDouble() < 0.25) {
        triplets.push_back({i, j, rng.NextDouble(0.5, 3.0)});
      }
    }
  }
  auto a = CsrMatrix::FromTriplets(40, 25, std::move(triplets));
  ASSERT_TRUE(a.ok());

  // Reference: power iteration on AᵀA.
  std::vector<double> v(25, 1.0);
  std::vector<double> tmp, av;
  double sigma = 0.0;
  for (int it = 0; it < 500; ++it) {
    a->Multiply(v, &tmp);
    a->MultiplyTranspose(tmp, &av);
    double norm = 0.0;
    for (double x : av) norm += x * x;
    norm = std::sqrt(norm);
    for (size_t i = 0; i < av.size(); ++i) v[i] = av[i] / norm;
    sigma = std::sqrt(norm);
  }

  SvdOptions options;
  options.rank = 3;
  options.power_iterations = 4;
  auto svd = RandomizedSvd(*a, options);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], sigma, sigma * 1e-4);
}

TEST(SvdTest, InvalidRankRejected) {
  auto a = CsrMatrix::FromTriplets(3, 3, {{0, 0, 1.0}});
  ASSERT_TRUE(a.ok());
  SvdOptions options;
  options.rank = 0;
  EXPECT_FALSE(RandomizedSvd(*a, options).ok());
  options.rank = 4;
  EXPECT_FALSE(RandomizedSvd(*a, options).ok());
}

TEST(SvdTest, DeterministicForFixedSeed) {
  auto a = CsrMatrix::FromTriplets(
      5, 4, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}, {3, 3, 4.0}, {4, 0, 1.0}});
  ASSERT_TRUE(a.ok());
  SvdOptions options;
  options.rank = 2;
  auto s1 = RandomizedSvd(*a, options);
  auto s2 = RandomizedSvd(*a, options);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (int k = 0; k < 2; ++k) {
    EXPECT_DOUBLE_EQ(s1->singular_values[k], s2->singular_values[k]);
  }
}

}  // namespace
}  // namespace longtail
