// Concurrency: the Recommender contract promises immutability after Fit and
// thread-safe queries. Hammer shared instances from many threads and verify
// results are identical to serial execution.
#include <gtest/gtest.h>

#include <atomic>

#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "baselines/pagerank.h"
#include "data/generator.h"
#include "util/serving_pool.h"

namespace longtail {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 120;
    spec.num_items = 90;
    spec.mean_user_degree = 12;
    spec.min_user_degree = 4;
    spec.num_genres = 6;
    spec.seed = 999;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static Dataset* data_;
};

Dataset* ConcurrencyTest::data_ = nullptr;

void HammerAndCompare(const Recommender& rec, const Dataset& data) {
  const int num_users = std::min<int>(40, data.num_users());
  // Serial reference.
  std::vector<std::vector<ScoredItem>> expected(num_users);
  for (UserId u = 0; u < num_users; ++u) {
    auto top = rec.RecommendTopK(u, 5);
    ASSERT_TRUE(top.ok());
    expected[u] = std::move(top).value();
  }
  // Parallel, repeated, interleaved.
  std::atomic<int> mismatches{0};
  ParallelFor(
      static_cast<size_t>(num_users) * 8,
      [&](size_t idx) {
        const UserId u = static_cast<UserId>(idx % num_users);
        auto top = rec.RecommendTopK(u, 5);
        if (!top.ok() || top->size() != expected[u].size()) {
          mismatches.fetch_add(1);
          return;
        }
        for (size_t k = 0; k < top->size(); ++k) {
          if ((*top)[k].item != expected[u][k].item ||
              (*top)[k].score != expected[u][k].score) {
            mismatches.fetch_add(1);
            return;
          }
        }
      },
      8);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, AbsorbingTimeSharedAcrossThreads) {
  AbsorbingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(*data_).ok());
  HammerAndCompare(rec, *data_);
}

TEST_F(ConcurrencyTest, AbsorbingCostSharedAcrossThreads) {
  AbsorbingCostOptions options;
  options.lda.num_topics = 3;
  options.lda.iterations = 10;
  AbsorbingCostRecommender rec(EntropySource::kTopicBased, options);
  ASSERT_TRUE(rec.Fit(*data_).ok());
  HammerAndCompare(rec, *data_);
}

TEST_F(ConcurrencyTest, PageRankSharedAcrossThreads) {
  PageRankRecommender rec(/*discounted=*/true);
  ASSERT_TRUE(rec.Fit(*data_).ok());
  HammerAndCompare(rec, *data_);
}

TEST_F(ConcurrencyTest, MixedScoreItemsAndTopK) {
  AbsorbingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(*data_).ok());
  std::vector<ItemId> candidates = {0, 1, 2, 3, 4};
  auto expected = rec.ScoreItems(0, candidates);
  ASSERT_TRUE(expected.ok());
  std::atomic<int> mismatches{0};
  ParallelFor(
      200,
      [&](size_t idx) {
        if (idx % 2 == 0) {
          auto scores = rec.ScoreItems(0, candidates);
          if (!scores.ok() || *scores != *expected) mismatches.fetch_add(1);
        } else {
          auto top = rec.RecommendTopK(static_cast<UserId>(idx % 20), 3);
          if (!top.ok()) mismatches.fetch_add(1);
        }
      },
      8);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace longtail
