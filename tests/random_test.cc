#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace longtail {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedUniformCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(31);
  const size_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextZipf(n, 1.0)];
  // Rank 0 should dominate rank 99 by roughly 100x under s=1.
  EXPECT_GT(counts[0], counts[99] * 20);
  // All samples in range (implicitly checked by indexing) and rank 0 most
  // frequent.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextZipf(1, 1.2), 0u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> copy = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  for (size_t k : {0u, 1u, 5u, 50u, 99u, 100u}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  // Child and parent should not mirror each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  std::vector<double> w = {2.0, 1.0, 0.0, 1.0};
  DiscreteSampler sampler(w);
  Rng rng(53);
  std::vector<int> counts(4, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.25, 0.02);
}

TEST(DiscreteSamplerTest, SingleOutcome) {
  DiscreteSampler sampler({5.0});
  Rng rng(59);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace longtail
