// Serving-layer observability and the three hardening fixes it rode in
// with:
//  1. Stats() snapshot ordering — outcome counters are acquire-loaded
//     before submitted_, so `completed + rejected <= submitted` holds in
//     every snapshot even mid-flight (the pre-fix code loaded submitted_
//     first and could report a >100% rejection rate).
//  2. Query retry budget — blocking Query/QueryAll under sustained
//     backpressure surfaces ResourceExhausted after query_retry_budget
//     attempts instead of hot-spinning while foreign traffic holds the
//     queue full.
//  3. queue_ticks_max fetch-max — concurrent Pump/dispatcher batches race
//     their waited values through one atomic; the CAS fetch-max loop
//     (AtomicFetchMax) must report the exact global max. The FakeClock
//     hammer here pins the engine-level behavior; the primitive-level
//     8-thread hammer lives in metrics_registry_test.
// Plus: the live engine's ExportText() parses as valid Prometheus text and
// carries the per-model queue gauges, cache and pool series.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "graph/subgraph_cache.h"
#include "prometheus_text_checker.h"
#include "serving/serving_engine.h"
#include "util/serving_pool.h"

namespace longtail {
namespace {

/// Minimal fitted model: answers every query instantly with empty results.
/// Lets the tests drive the engine's bookkeeping without walk work.
class NullRecommender : public Recommender {
 public:
  std::string name() const override { return "null"; }
  Status Fit(const Dataset& data) override {
    data_ = &data;
    return Status::OK();
  }
  Result<std::vector<ScoredItem>> RecommendTopK(UserId, int) const override {
    return std::vector<ScoredItem>{};
  }
  Result<std::vector<double>> ScoreItems(
      UserId, std::span<const ItemId> items) const override {
    return std::vector<double>(items.size(), 0.0);
  }
};

/// A model whose QueryBatch blocks on a gate: lets a test wedge the
/// dispatcher thread mid-batch so the queue stays full behind it.
class GateRecommender : public NullRecommender {
 public:
  std::string name() const override { return "gate"; }

  std::vector<UserQueryResult> QueryBatch(
      std::span<const UserQuery> queries,
      const BatchOptions&) const override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [this] { return open_; });
    return std::vector<UserQueryResult>(queries.size());
  }

  void WaitForEntries(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this, n] { return entered_ >= n; });
  }

  /// Opens the gate permanently; every blocked and future batch proceeds.
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable open_cv_;
  mutable int entered_ = 0;
  bool open_ = false;
};

Dataset MakeTinyDataset() {
  SyntheticSpec spec;
  spec.num_users = 20;
  spec.num_items = 15;
  spec.mean_user_degree = 4;
  spec.min_user_degree = 2;
  spec.num_genres = 3;
  spec.seed = 50127;
  auto data = GenerateSyntheticData(spec);
  EXPECT_TRUE(data.ok());
  return std::move(data).value().dataset;
}

// ---------------------------------------------------------------- fix 1

// Hammers Submit from four threads while a reader snapshots Stats() in a
// loop. Every snapshot must be internally consistent: an outcome implies
// its submission. The pre-fix Stats() loaded submitted_ *first*, so any
// submit+reject completing between that load and the outcome loads showed
// up as a rejection without a submission — rejected > submitted, a
// rejection rate over 100%. No sleeps: the unknown-model fast path keeps
// writer iterations short so snapshots land at many interleavings.
TEST(ServingEngineStatsTest, SnapshotInvariantsUnderConcurrentSubmits) {
  ServingEngineOptions options;
  options.start_dispatcher = false;
  ServingEngine engine(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 30000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&engine] {
      ServeRequest request;
      request.user = 0;
      request.top_k = 1;
      for (int i = 0; i < kPerWriter; ++i) {
        engine.Submit("ghost", request);
      }
    });
  }
  uint64_t snapshots = 0;
  while (!done.load(std::memory_order_acquire)) {
    const EngineStats stats = engine.Stats();
    const uint64_t outcomes = stats.completed + stats.rejected_queue_full +
                              stats.rejected_expired +
                              stats.rejected_unknown_model +
                              stats.rejected_shutdown +
                              stats.expired_in_queue;
    ASSERT_LE(outcomes, stats.submitted)
        << "snapshot " << snapshots << " shows an outcome without its "
        << "submission";
    ASSERT_LE(stats.completed, stats.dispatched);
    ASSERT_LE(stats.dispatched, stats.submitted);
    ASSERT_LE(engine.Stats().RejectionRate(), 1.0);
    ++snapshots;
    if (snapshots % 512 == 0) std::this_thread::yield();
    if (stats.submitted >=
        static_cast<uint64_t>(kWriters) * kPerWriter) {
      done.store(true, std::memory_order_release);
    }
  }
  for (auto& t : writers) t.join();
  const EngineStats final_stats = engine.Stats();
  EXPECT_EQ(final_stats.submitted,
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(final_stats.rejected_unknown_model, final_stats.submitted);
  EXPECT_DOUBLE_EQ(final_stats.RejectionRate(), 1.0);
}

// Deterministic form of the same regression. The hammer above relies on the
// scheduler preempting the reader between two adjacent loads — on a
// single-core host that almost never happens, so it could pass even on the
// broken code. Here the test hook inside Stats() wedges the reader right
// after its first field load while a writer thread lands a full burst of
// submit+reject pairs, forcing the exact interleaving: pre-fix (submitted_
// loaded first) the snapshot shows 1000 rejections against 1 submission;
// post-fix (submitted_ loaded last) the late submitted_ read covers every
// outcome the snapshot saw.
TEST(ServingEngineStatsTest, SnapshotWedgedMidReadNeverOverCountsOutcomes) {
  ServingEngineOptions options;
  options.start_dispatcher = false;
  ServingEngine engine(options);

  constexpr int kBurst = 1000;
  std::mutex mu;
  std::condition_variable cv;
  bool burst_requested = false;
  bool burst_done = false;
  bool quit = false;
  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return burst_requested || quit; });
      if (quit) return;
      burst_requested = false;
      lock.unlock();
      ServeRequest request;
      request.user = 0;
      request.top_k = 1;
      for (int i = 0; i < kBurst; ++i) engine.Submit("ghost", request);
      lock.lock();
      burst_done = true;
      cv.notify_all();
    }
  });
  engine.set_stats_snapshot_hook_for_test([&] {
    std::unique_lock<std::mutex> lock(mu);
    burst_done = false;
    burst_requested = true;
    cv.notify_all();
    cv.wait(lock, [&] { return burst_done; });
  });

  ServeRequest request;
  request.user = 0;
  request.top_k = 1;
  engine.Submit("ghost", request);

  // The hook fires mid-snapshot: one submission visible before the wedge,
  // kBurst more land while the reader is paused.
  const EngineStats stats = engine.Stats();
  const uint64_t outcomes = stats.completed + stats.rejected_queue_full +
                            stats.rejected_expired +
                            stats.rejected_unknown_model +
                            stats.rejected_shutdown + stats.expired_in_queue;
  EXPECT_LE(outcomes, stats.submitted)
      << "snapshot shows " << outcomes << " outcomes against "
      << stats.submitted << " submissions";
  EXPECT_LE(stats.RejectionRate(), 1.0);

  engine.set_stats_snapshot_hook_for_test(nullptr);
  {
    std::lock_guard<std::mutex> lock(mu);
    quit = true;
  }
  cv.notify_all();
  writer.join();

  const EngineStats final_stats = engine.Stats();
  EXPECT_EQ(final_stats.submitted, static_cast<uint64_t>(kBurst) + 1);
  EXPECT_EQ(final_stats.rejected_unknown_model, final_stats.submitted);
}

// ---------------------------------------------------------------- fix 2

// Wedges the dispatcher inside a batch (GateRecommender), fills the
// 1-deep queue behind it, then issues a blocking Query. Pre-fix this spun
// forever (Submit → queue full → yield → retry, with nothing draining);
// with the budget the caller gets the ResourceExhausted after exactly
// query_retry_budget attempts. The FakeClock never advances, proving the
// backoff's spin bound — not wall-clock time — is what keeps retries
// moving toward the budget.
TEST(ServingEngineBackpressureTest, QueryRetryBudgetSurfacesRejection) {
  const Dataset data = MakeTinyDataset();
  GateRecommender gate;
  ASSERT_TRUE(gate.Fit(data).ok());

  FakeClock clock;
  ServingEngineOptions options;
  options.clock = &clock;
  options.max_batch_size = 1;
  options.max_queue_depth = 1;
  options.flush_interval_ticks = 0;
  options.batch_threads = 1;
  options.query_retry_budget = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(&gate).ok());

  ServeRequest request;
  request.user = 0;
  request.top_k = 1;

  // r1: taken by the dispatcher, wedged inside QueryBatch at the gate.
  std::future<UserQueryResult> f1 = engine.Submit("gate", request);
  gate.WaitForEntries(1);
  // r2: sits in the queue (depth 1 → now full) behind the wedged batch.
  std::future<UserQueryResult> f2 = engine.Submit("gate", request);
  ASSERT_NE(f2.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);

  // r3: blocking Query against the held-full queue, off-thread so a
  // regression (the pre-fix infinite retry loop) fails the test instead
  // of hanging it.
  std::mutex mu;
  std::condition_variable cv;
  bool query_done = false;
  UserQueryResult r3;
  std::thread caller([&] {
    UserQueryResult result = engine.Query("gate", request);
    std::lock_guard<std::mutex> lock(mu);
    r3 = std::move(result);
    query_done = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    const bool returned = cv.wait_for(lock, std::chrono::seconds(20),
                                      [&] { return query_done; });
    EXPECT_TRUE(returned)
        << "Query is still retrying under backpressure: the retry budget "
        << "did not bound the loop";
  }
  gate.Open();  // Unwedge: f1 completes, then the dispatcher serves r2.
  caller.join();
  EXPECT_EQ(r3.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.backpressure_retries, 4u);
  // Each retry was a fresh Submit: 2 served + 4 rejected admissions.
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.rejected_queue_full, 4u);
  EXPECT_EQ(stats.completed, 2u);
}

// query_retry_budget = 0 keeps the legacy retry-forever contract: the
// request rides out transient backpressure and succeeds once the queue
// drains.
TEST(ServingEngineBackpressureTest, ZeroBudgetRetriesUntilServed) {
  const Dataset data = MakeTinyDataset();
  GateRecommender gate;
  ASSERT_TRUE(gate.Fit(data).ok());

  FakeClock clock;
  ServingEngineOptions options;
  options.clock = &clock;
  options.max_batch_size = 1;
  options.max_queue_depth = 1;
  options.flush_interval_ticks = 0;
  options.batch_threads = 1;
  options.query_retry_budget = 0;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(&gate).ok());

  ServeRequest request;
  request.user = 0;
  request.top_k = 1;
  std::future<UserQueryResult> f1 = engine.Submit("gate", request);
  gate.WaitForEntries(1);
  std::future<UserQueryResult> f2 = engine.Submit("gate", request);

  std::thread caller([&] {
    // Retries as long as it takes; succeeds once the gate opens.
    EXPECT_TRUE(engine.Query("gate", request).status.ok());
  });
  // Let the caller bang against the full queue a few times, then open.
  while (engine.Stats().backpressure_retries < 8) {
    std::this_thread::yield();
  }
  gate.Open();
  caller.join();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

// ---------------------------------------------------------------- fix 3

// 64 requests enqueued at ticks 1..64, clock jumped to 100, then eight
// threads race 1-request forced pumps: 64 concurrent queue_ticks_max
// updates with distinct waited values (99 down to 36). The fetch-max must
// report exactly 99 and the sum exactly sum(100 - t); a plain
// load-compare-store max drops concurrent updates under this contention.
TEST(ServingEngineStatsTest, QueueTicksMaxExactUnderConcurrentPumps) {
  const Dataset data = MakeTinyDataset();
  NullRecommender model;
  ASSERT_TRUE(model.Fit(data).ok());

  FakeClock clock;
  ServingEngineOptions options;
  options.clock = &clock;
  options.start_dispatcher = false;
  options.max_batch_size = 1;  // one max update per pumped batch
  options.max_queue_depth = 128;
  options.batch_threads = 1;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(&model).ok());

  constexpr uint64_t kRequests = 64;
  ServeRequest request;
  request.user = 0;
  request.top_k = 1;
  std::vector<std::future<UserQueryResult>> futures;
  futures.reserve(kRequests);
  uint64_t expected_sum = 0;
  for (uint64_t t = 1; t <= kRequests; ++t) {
    clock.Set(t);
    futures.push_back(engine.Submit("null", request));
    expected_sum += 100 - t;
  }
  clock.Set(100);

  constexpr int kPumpers = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> pumpers;
  pumpers.reserve(kPumpers);
  for (int p = 0; p < kPumpers; ++p) {
    pumpers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      engine.PumpUntilIdle();
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : pumpers) t.join();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queue_ticks_max, 99u);  // the tick-1 request waited 99
  EXPECT_EQ(stats.queue_ticks_sum, expected_sum);
  EXPECT_EQ(stats.dispatched, kRequests);
  EXPECT_EQ(stats.batches_executed, kRequests);
}

// ------------------------------------------------------------ exposition

// The live engine's scrape surface: valid Prometheus text carrying the
// engine counters, per-model queue gauges (live + peak), the batch-size
// and queue-wait histograms, and — when bound into the same registry —
// the subgraph-cache and pool series.
TEST(ServingEngineMetricsTest, LiveExpositionParsesAndTracksQueues) {
  const Dataset data = MakeTinyDataset();
  NullRecommender model;
  ASSERT_TRUE(model.Fit(data).ok());

  FakeClock clock;
  ServingEngineOptions options;
  options.clock = &clock;
  options.start_dispatcher = false;
  options.max_batch_size = 4;
  options.flush_interval_ticks = 10;
  options.batch_threads = 1;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.AddModel(&model).ok());

  // Bind the sibling components into the engine's registry. Declared
  // after the engine so they die (and release their callbacks) first.
  SubgraphCache cache;
  cache.BindMetrics(engine.metrics());
  ServingPool pool(2);
  pool.BindMetrics(engine.metrics());
  pool.ParallelFor(16, [](size_t) {}, /*parallelism=*/2, /*grain=*/1);

  ServeRequest request;
  request.user = 1;
  request.top_k = 3;
  std::vector<std::future<UserQueryResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(engine.Submit("null", request));
  }
  // Queue holds 3 (below max_batch_size, below flush age).
  {
    const std::string text = engine.metrics()->ExportText();
    EXPECT_NE(text.find("longtail_engine_queue_depth{model=\"null\"} 3\n"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("longtail_engine_queue_depth_peak{model=\"null\"} 3\n"),
        std::string::npos);
    EXPECT_NE(text.find("longtail_engine_requests_submitted_total 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("longtail_engine_queued_requests 3\n"),
              std::string::npos);
  }
  clock.Advance(5);
  engine.PumpUntilIdle();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  engine.Submit("ghost", request);  // one unknown-model rejection

  const std::string text = engine.metrics()->ExportText();
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(text, &error)) << error << "\n" << text;
  // Depth drained to 0; the peak gauge still remembers the burst.
  EXPECT_NE(text.find("longtail_engine_queue_depth{model=\"null\"} 0\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("longtail_engine_queue_depth_peak{model=\"null\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("longtail_engine_requests_completed_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("longtail_engine_requests_rejected_total"
                      "{reason=\"unknown_model\"} 1\n"),
            std::string::npos);
  // One executed batch of size 3 → the le="4" cumulative bucket holds it.
  EXPECT_NE(text.find("longtail_engine_batch_size_bucket{le=\"4\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("longtail_engine_batch_size_count 1\n"),
            std::string::npos);
  // Every request waited 5 ticks at dispatch.
  EXPECT_NE(
      text.find("longtail_engine_queue_wait_ticks_bucket{le=\"8\"} 3\n"),
      std::string::npos);
  // Cache and pool series are present in the same scrape.
  EXPECT_NE(text.find("longtail_subgraph_cache_hits_total 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("longtail_pool_parallel_for_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("longtail_pool_threads 2\n"), std::string::npos);
}

// Engines default to a private registry, so two engines in one process
// never collide on series names; an external registry is shared intact.
TEST(ServingEngineMetricsTest, PrivateRegistriesDoNotCollide) {
  ServingEngineOptions options;
  options.start_dispatcher = false;
  ServingEngine a(options);
  ServingEngine b(options);
  EXPECT_NE(a.metrics(), b.metrics());

  MetricsRegistry shared;
  ServingEngineOptions shared_options;
  shared_options.start_dispatcher = false;
  shared_options.metrics = &shared;
  {
    ServingEngine c(shared_options);
    EXPECT_EQ(c.metrics(), &shared);
    EXPECT_NE(shared.ExportText().find(
                  "longtail_engine_requests_submitted_total 0\n"),
              std::string::npos);
  }
  // The destroyed engine released its callbacks; the registry survives
  // with the engine's callback series gone (owned histograms remain).
  const std::string text = shared.ExportText();
  EXPECT_EQ(text.find("longtail_engine_requests_submitted_total"),
            std::string::npos);
  EXPECT_NE(text.find("longtail_engine_batch_size"), std::string::npos);
}

}  // namespace
}  // namespace longtail
