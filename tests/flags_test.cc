#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace longtail {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (auto& s : storage_) argv_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(FlagsTest, ParsesEqualsForm) {
  FlagParser parser;
  int scale = 1;
  double ratio = 0.5;
  std::string name = "none";
  bool verbose = false;
  parser.AddInt("scale", &scale, "scale");
  parser.AddDouble("ratio", &ratio, "ratio");
  parser.AddString("name", &name, "name");
  parser.AddBool("verbose", &verbose, "verbose");
  ArgvBuilder args({"--scale=7", "--ratio=0.25", "--name=ml", "--verbose=true"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(scale, 7);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(name, "ml");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, ParsesSpaceForm) {
  FlagParser parser;
  int64_t big = 0;
  parser.AddInt("big", &big, "big");
  ArgvBuilder args({"--big", "123456789012"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(big, 123456789012LL);
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagParser parser;
  bool on = false;
  parser.AddBool("on", &on, "toggle");
  ArgvBuilder args({"--on"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(on);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser parser;
  ArgvBuilder args({"--mystery=1"});
  const Status s = parser.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntegerFails) {
  FlagParser parser;
  int v = 0;
  parser.AddInt("v", &v, "v");
  ArgvBuilder args({"--v=abc"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadBoolFails) {
  FlagParser parser;
  bool v = false;
  parser.AddBool("v", &v, "v");
  ArgvBuilder args({"--v=maybe"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagParser parser;
  int v = 0;
  parser.AddInt("v", &v, "v");
  ArgvBuilder args({"--v"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, PositionalArgumentFails) {
  FlagParser parser;
  ArgvBuilder args({"stray"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  FlagParser parser;
  int v = 99;
  parser.AddInt("v", &v, "v");
  ArgvBuilder args({});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(v, 99);
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagParser parser;
  int v = 42;
  parser.AddInt("answer", &v, "the answer");
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("--answer"), std::string::npos);
  EXPECT_NE(usage.find("42"), std::string::npos);
  EXPECT_NE(usage.find("the answer"), std::string::npos);
}

TEST(FlagsTest, HelpReturnsNonOk) {
  FlagParser parser;
  ArgvBuilder args({"--help"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

}  // namespace
}  // namespace longtail
