// Robustness: every parser/loader must return a clean Status on malformed
// input — never crash, hang, or silently accept garbage.
#include <gtest/gtest.h>

#include <fstream>

#include "core/absorbing_time.h"
#include "data/generator.h"
#include "data/movielens_io.h"
#include "data/serialization.h"
#include "test_util.h"
#include "util/flags.h"
#include "util/random.h"

namespace longtail {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string RandomBytes(Rng* rng, size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng->NextUint64(256));
  return s;
}

TEST(RobustnessTest, MovieLensLoaderSurvivesRandomGarbage) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("garbage.dat");
    WriteBytes(path, RandomBytes(&rng, 64 + rng.NextUint64(512)));
    auto result = LoadMovieLensRatings(path);  // Must not crash.
    if (result.ok()) {
      // Exceedingly unlikely, but if it parses it must be structurally sane.
      EXPECT_GE(result->num_users(), 1);
    }
  }
}

TEST(RobustnessTest, DatasetLoaderSurvivesRandomGarbage) {
  Rng rng(2025);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("garbage.ltds");
    WriteBytes(path, RandomBytes(&rng, 64 + rng.NextUint64(512)));
    auto result = LoadDatasetBinary(path);
    EXPECT_FALSE(result.ok());  // magic check rejects random bytes
  }
}

TEST(RobustnessTest, DatasetLoaderSurvivesHeaderWithGarbageBody) {
  Rng rng(2026);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("magic_garbage.ltds");
    WriteBytes(path, "LTDS0001" + RandomBytes(&rng, 32 + rng.NextUint64(256)));
    auto result = LoadDatasetBinary(path);  // Must not crash or overalloc.
    EXPECT_FALSE(result.ok());
  }
}

TEST(RobustnessTest, LdaLoaderSurvivesHeaderWithGarbageBody) {
  Rng rng(2027);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("magic_garbage.ltlm");
    WriteBytes(path, "LTLM0001" + RandomBytes(&rng, 32 + rng.NextUint64(256)));
    auto result = LoadLdaModel(path);
    EXPECT_FALSE(result.ok());
  }
}

TEST(RobustnessTest, FlagParserSurvivesHostileArgv) {
  Rng rng(2028);
  for (int trial = 0; trial < 50; ++trial) {
    FlagParser parser;
    int v = 0;
    double d = 0;
    bool b = false;
    std::string s;
    parser.AddInt("v", &v, "v");
    parser.AddDouble("d", &d, "d");
    parser.AddBool("b", &b, "b");
    parser.AddString("s", &s, "s");
    std::vector<std::string> storage = {"prog"};
    const int n = 1 + static_cast<int>(rng.NextUint64(5));
    for (int a = 0; a < n; ++a) {
      std::string arg = rng.NextBool(0.7) ? "--" : "";
      arg += RandomBytes(&rng, 1 + rng.NextUint64(12));
      storage.push_back(std::move(arg));
    }
    std::vector<char*> argv;
    for (auto& str : storage) argv.push_back(str.data());
    parser.Parse(static_cast<int>(argv.size()), argv.data());  // No crash.
  }
}

TEST(RobustnessTest, GeneratorHandlesDegenerateShapes) {
  // One user, min-degree catalog.
  SyntheticSpec spec;
  spec.num_users = 1;
  spec.num_items = 3;
  spec.mean_user_degree = 3;
  spec.min_user_degree = 3;
  spec.max_user_degree = 3;
  spec.num_genres = 1;
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->dataset.num_ratings(), 3);

  // Catalog exactly equals the degree floor for many users.
  spec.num_users = 20;
  auto data2 = GenerateSyntheticData(spec);
  ASSERT_TRUE(data2.ok());
  for (UserId u = 0; u < 20; ++u) {
    EXPECT_EQ(data2->dataset.UserDegree(u), 3);
  }
}

TEST(RobustnessTest, EmptyCandidateListsAreFine) {
  Dataset d = testing::MakeFigure2Dataset();
  // ScoreItems with an empty span returns an empty vector for any
  // recommender built on the base machinery.
  AbsorbingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  std::vector<ItemId> empty;
  auto scores = rec.ScoreItems(testing::kU5, empty);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->empty());
}

}  // namespace
}  // namespace longtail
