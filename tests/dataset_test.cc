#include "data/dataset.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

TEST(DatasetTest, Figure2Shape) {
  Dataset d = MakeFigure2Dataset();
  EXPECT_EQ(d.num_users(), 5);
  EXPECT_EQ(d.num_items(), 6);
  EXPECT_EQ(d.num_ratings(), 16);
  EXPECT_NEAR(d.Density(), 16.0 / 30.0, 1e-12);
}

TEST(DatasetTest, UserOrientation) {
  Dataset d = MakeFigure2Dataset();
  const auto items = d.UserItems(testing::kU1);
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0], testing::kM1);
  EXPECT_EQ(items[1], testing::kM2);
  EXPECT_EQ(items[2], testing::kM5);
  EXPECT_EQ(items[3], testing::kM6);
  const auto values = d.UserValues(testing::kU1);
  EXPECT_FLOAT_EQ(values[0], 5.0f);
  EXPECT_FLOAT_EQ(values[1], 3.0f);
  EXPECT_EQ(d.UserDegree(testing::kU2), 5);
}

TEST(DatasetTest, ItemOrientation) {
  Dataset d = MakeFigure2Dataset();
  const auto users = d.ItemUsers(testing::kM3);
  ASSERT_EQ(users.size(), 4u);
  EXPECT_EQ(users[0], testing::kU2);
  EXPECT_EQ(users[1], testing::kU3);
  EXPECT_EQ(users[2], testing::kU4);
  EXPECT_EQ(users[3], testing::kU5);
  EXPECT_EQ(d.ItemPopularity(testing::kM4), 1);
  EXPECT_EQ(d.ItemPopularity(testing::kM1), 3);
}

TEST(DatasetTest, BothOrientationsAgree) {
  Dataset d = MakeFigure2Dataset();
  int64_t user_side = 0;
  for (UserId u = 0; u < d.num_users(); ++u) user_side += d.UserDegree(u);
  int64_t item_side = 0;
  for (ItemId i = 0; i < d.num_items(); ++i) item_side += d.ItemPopularity(i);
  EXPECT_EQ(user_side, d.num_ratings());
  EXPECT_EQ(item_side, d.num_ratings());
}

TEST(DatasetTest, HasRatingAndGetRating) {
  Dataset d = MakeFigure2Dataset();
  EXPECT_TRUE(d.HasRating(testing::kU5, testing::kM2));
  EXPECT_FALSE(d.HasRating(testing::kU5, testing::kM1));
  EXPECT_FLOAT_EQ(d.GetRating(testing::kU5, testing::kM3), 5.0f);
  EXPECT_FLOAT_EQ(d.GetRating(testing::kU5, testing::kM4), 0.0f);
}

TEST(DatasetTest, ToRatingListRoundTrips) {
  Dataset d = MakeFigure2Dataset();
  auto list = d.ToRatingList();
  EXPECT_EQ(list.size(), 16u);
  auto rebuilt = Dataset::Create(5, 6, list);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->num_ratings(), d.num_ratings());
  for (UserId u = 0; u < 5; ++u) {
    for (ItemId i = 0; i < 6; ++i) {
      EXPECT_FLOAT_EQ(rebuilt->GetRating(u, i), d.GetRating(u, i));
    }
  }
}

TEST(DatasetTest, DuplicateRatingLastWins) {
  auto d = Dataset::Create(1, 1, {{0, 0, 2.0f}, {0, 0, 4.0f}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_ratings(), 1);
  EXPECT_FLOAT_EQ(d->GetRating(0, 0), 4.0f);
}

TEST(DatasetTest, RejectsOutOfRangeIds) {
  EXPECT_FALSE(Dataset::Create(1, 1, {{1, 0, 3.0f}}).ok());
  EXPECT_FALSE(Dataset::Create(1, 1, {{0, 1, 3.0f}}).ok());
  EXPECT_FALSE(Dataset::Create(1, 1, {{-1, 0, 3.0f}}).ok());
}

TEST(DatasetTest, RejectsNonPositiveValues) {
  EXPECT_FALSE(Dataset::Create(1, 1, {{0, 0, 0.0f}}).ok());
  EXPECT_FALSE(Dataset::Create(1, 1, {{0, 0, -2.0f}}).ok());
}

TEST(DatasetTest, EmptyDatasetIsValid) {
  auto d = Dataset::Create(3, 4, {});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_ratings(), 0);
  EXPECT_EQ(d->UserDegree(0), 0);
  EXPECT_EQ(d->ItemPopularity(3), 0);
  EXPECT_EQ(d->Density(), 0.0);
}

TEST(DatasetTest, UsersWithNoRatingsBetweenOthers) {
  auto d = Dataset::Create(3, 2, {{0, 0, 1.0f}, {2, 1, 2.0f}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->UserDegree(0), 1);
  EXPECT_EQ(d->UserDegree(1), 0);
  EXPECT_EQ(d->UserDegree(2), 1);
  EXPECT_TRUE(d->UserItems(1).empty());
}

}  // namespace
}  // namespace longtail
