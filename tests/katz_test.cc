#include "baselines/katz.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;
using testing::MakePathDataset;

TEST(KatzTest, SingleEdgePathCount) {
  // u — i with weight 3: Katz(u → i) over paths of length 1 = β·3.
  auto d = Dataset::Create(1, 1, {{0, 0, 3.0f}});
  ASSERT_TRUE(d.ok());
  KatzOptions options;
  options.beta = 0.1;
  options.max_path_length = 2;
  KatzRecommender rec(options);
  ASSERT_TRUE(rec.Fit(*d).ok());
  auto katz = rec.ComputeKatzVector(0);
  ASSERT_TRUE(katz.ok());
  const BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  EXPECT_NEAR((*katz)[g.ItemNode(0)], 0.1 * 3.0, 1e-12);
}

TEST(KatzTest, ThreeHopPathProduct) {
  // Path u0 - i0 - u1 - i1 (unit weights): Katz(u0 → i1) counts the single
  // length-3 path: β³. Plus longer paths if allowed; cap at 3.
  Dataset d = MakePathDataset(3);  // u0-i0-u1-i1-u2
  KatzOptions options;
  options.beta = 0.5;
  options.max_path_length = 3;
  KatzRecommender rec(options);
  ASSERT_TRUE(rec.Fit(d).ok());
  auto katz = rec.ComputeKatzVector(0);
  ASSERT_TRUE(katz.ok());
  const BipartiteGraph g = BipartiteGraph::FromDataset(d);
  EXPECT_NEAR((*katz)[g.ItemNode(1)], 0.5 * 0.5 * 0.5, 1e-12);
  // i0 gets the length-1 path plus a length-3 bounce u0-i0-u0-i0 and
  // u0-i0-u1-i0: β + 2β³.
  EXPECT_NEAR((*katz)[g.ItemNode(0)], 0.5 + 2 * 0.125, 1e-12);
}

TEST(KatzTest, PrefersPopularItemsOnFigure2) {
  // The paper's point (§3.2): Katz does not discount popularity, so for U5
  // the heavily-rated M1 outscores the niche M4.
  Dataset d = MakeFigure2Dataset();
  KatzRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM1, testing::kM4};
  auto scores = rec.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[0], (*scores)[1]);
}

TEST(KatzTest, ExcludesRatedItems) {
  Dataset d = MakeFigure2Dataset();
  KatzRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 6);
  ASSERT_TRUE(top.ok());
  for (const auto& si : *top) {
    EXPECT_FALSE(d.HasRating(testing::kU5, si.item));
  }
}

TEST(KatzTest, UnreachableItemsScoreZero) {
  auto d = Dataset::Create(2, 2, {{0, 0, 5.0f}, {1, 1, 5.0f}});
  ASSERT_TRUE(d.ok());
  KatzRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  const std::vector<ItemId> items = {1};
  auto scores = rec.ScoreItems(0, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], 0.0);
}

TEST(KatzTest, LongerHorizonAddsMass) {
  Dataset d = MakeFigure2Dataset();
  KatzOptions short_walk;
  short_walk.max_path_length = 3;
  KatzOptions long_walk;
  long_walk.max_path_length = 7;
  KatzRecommender rec_short(short_walk);
  KatzRecommender rec_long(long_walk);
  ASSERT_TRUE(rec_short.Fit(d).ok());
  ASSERT_TRUE(rec_long.Fit(d).ok());
  auto k_short = rec_short.ComputeKatzVector(testing::kU5);
  auto k_long = rec_long.ComputeKatzVector(testing::kU5);
  ASSERT_TRUE(k_short.ok());
  ASSERT_TRUE(k_long.ok());
  for (size_t v = 0; v < k_short->size(); ++v) {
    EXPECT_GE((*k_long)[v], (*k_short)[v] - 1e-15);
  }
}

TEST(KatzTest, InvalidOptionsRejected) {
  Dataset d = MakeFigure2Dataset();
  KatzOptions options;
  options.beta = 0.0;
  EXPECT_FALSE(KatzRecommender(options).Fit(d).ok());
  options = KatzOptions();
  options.max_path_length = 1;
  EXPECT_FALSE(KatzRecommender(options).Fit(d).ok());
}

}  // namespace
}  // namespace longtail
