// Tests for the metrics registry: golden Prometheus exposition, a small
// format validator reused against live output elsewhere, lock-free
// instrument semantics, callback lifetime, and the AtomicFetchMax hammer
// (the primitive behind queue_ticks_max and queue peak-depth tracking).
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "prometheus_text_checker.h"

namespace longtail {
namespace {

TEST(AtomicFetchMaxTest, RaisesOnlyUpward) {
  std::atomic<uint64_t> target{10};
  EXPECT_EQ(AtomicFetchMax(target, 5), 10u);
  EXPECT_EQ(target.load(), 10u);
  EXPECT_EQ(AtomicFetchMax(target, 17), 10u);
  EXPECT_EQ(target.load(), 17u);
  EXPECT_EQ(AtomicFetchMax(target, 17), 17u);
  EXPECT_EQ(target.load(), 17u);
}

// The lost-update scenario from the serving-engine audit: N threads race
// maxima through one atomic. A plain load/compare/store max loses updates
// when a smaller value's store lands after a larger value's; the CAS loop
// must end with exactly the global max. Single-core hosts still interleave
// via preemption, so keep per-thread work long enough to cross quanta.
TEST(AtomicFetchMaxTest, EightThreadHammerNeverUnderReports) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<uint64_t> target{0};
  std::vector<std::vector<uint64_t>> values(kThreads);
  uint64_t expected_max = 0;
  std::mt19937_64 rng(50121);
  for (int t = 0; t < kThreads; ++t) {
    values[t].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) {
      const uint64_t v = rng() % 1000000;
      values[t].push_back(v);
      expected_max = std::max(expected_max, v);
    }
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t v : values[t]) AtomicFetchMax(target, v);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(target.load(), expected_max);
}

TEST(CounterTest, IncrementsAccumulate) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddIncrementDecrement) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Increment();
  g.Decrement();
  g.Decrement();
  EXPECT_DOUBLE_EQ(g.Value(), 3.0);
}

TEST(HistogramTest, ObservationsLandInLeBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // le=1
  h.Observe(1.0);   // le=1 (boundary value belongs to its bucket)
  h.Observe(1.5);   // le=2
  h.Observe(4.0);   // le=4
  h.Observe(100.0); // +Inf
  const std::vector<uint64_t> slots = h.SlotCounts();
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0], 2u);
  EXPECT_EQ(slots[1], 1u);
  EXPECT_EQ(slots[2], 1u);
  EXPECT_EQ(slots[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 107.0);
}

TEST(HistogramTest, BucketBuilders) {
  EXPECT_EQ(LinearBuckets(1.0, 2.0, 3), (std::vector<double>{1.0, 3.0, 5.0}));
  EXPECT_EQ(ExponentialBuckets(1.0, 4.0, 3),
            (std::vector<double>{1.0, 4.0, 16.0}));
}

TEST(MetricsRegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("shared_total", "shared");
  Counter* b = registry.RegisterCounter("shared_total", "shared");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.RegisterGauge("depth", "d", {{"model", "x"}});
  Gauge* g2 = registry.RegisterGauge("depth", "d", {{"model", "x"}});
  Gauge* g3 = registry.RegisterGauge("depth", "d", {{"model", "y"}});
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, g3);
}

// Golden exposition: the exact byte sequence is the contract a scraper (and
// the future HTTP /metrics endpoint) depends on. Families sort by name,
// children by serialized labels, histograms emit cumulative le-buckets
// capped with +Inf plus _sum/_count.
TEST(MetricsRegistryTest, ExportTextGolden) {
  MetricsRegistry registry;
  Counter* requests =
      registry.RegisterCounter("app_requests_total", "Total requests.");
  requests->Increment(3);
  registry
      .RegisterCounter("app_rejected_total", "Rejected requests.",
                       {{"reason", "queue_full"}})
      ->Increment(2);
  registry
      .RegisterCounter("app_rejected_total", "Rejected requests.",
                       {{"reason", "expired"}})
      ->Increment(1);
  Gauge* depth = registry.RegisterGauge("app_queue_depth", "Queue depth.");
  depth->Set(7);
  Histogram* lat = registry.RegisterHistogram(
      "app_latency_ticks", "Latency in ticks.", {1.0, 2.5, 10.0});
  lat->Observe(0.5);
  lat->Observe(2.0);
  lat->Observe(2.5);
  lat->Observe(99.0);

  const std::string expected =
      "# HELP app_latency_ticks Latency in ticks.\n"
      "# TYPE app_latency_ticks histogram\n"
      "app_latency_ticks_bucket{le=\"1\"} 1\n"
      "app_latency_ticks_bucket{le=\"2.5\"} 3\n"
      "app_latency_ticks_bucket{le=\"10\"} 3\n"
      "app_latency_ticks_bucket{le=\"+Inf\"} 4\n"
      "app_latency_ticks_sum 104\n"
      "app_latency_ticks_count 4\n"
      "# HELP app_queue_depth Queue depth.\n"
      "# TYPE app_queue_depth gauge\n"
      "app_queue_depth 7\n"
      "# HELP app_rejected_total Rejected requests.\n"
      "# TYPE app_rejected_total counter\n"
      "app_rejected_total{reason=\"expired\"} 1\n"
      "app_rejected_total{reason=\"queue_full\"} 2\n"
      "# HELP app_requests_total Total requests.\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total 3\n";
  EXPECT_EQ(registry.ExportText(), expected);
}

TEST(MetricsRegistryTest, EscapesHelpAndLabelValues) {
  MetricsRegistry registry;
  registry.RegisterGauge("esc", "line1\nline2 with \\ backslash",
                         {{"path", "a\"b\\c\nd"}});
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("# HELP esc line1\\nline2 with \\\\ backslash\n"),
            std::string::npos);
  EXPECT_NE(text.find("esc{path=\"a\\\"b\\\\c\\nd\"} 0\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, NonIntegralValuesUseShortestRoundTrip) {
  MetricsRegistry registry;
  registry.RegisterGauge("frac", "f")->Set(0.1);
  EXPECT_NE(registry.ExportText().find("frac 0.1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, CallbackInstrumentsSampleAtExport) {
  MetricsRegistry registry;
  std::atomic<uint64_t> source{5};
  int owner_token = 0;
  registry.RegisterCallbackCounter(
      "cb_total", "Callback counter.", {},
      [&source] { return source.load(); }, &owner_token);
  registry.RegisterCallbackGauge(
      "cb_gauge", "Callback gauge.", {{"k", "v"}},
      [&source] { return source.load() * 0.5; }, &owner_token);
  EXPECT_NE(registry.ExportText().find("cb_total 5\n"), std::string::npos);
  source.store(12);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("cb_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("cb_gauge{k=\"v\"} 6\n"), std::string::npos);

  // After release, the callbacks (and their emptied families) are gone —
  // the closure over `source` is never invoked again.
  registry.ReleaseCallbacks(&owner_token);
  const std::string after = registry.ExportText();
  EXPECT_EQ(after.find("cb_total"), std::string::npos);
  EXPECT_EQ(after.find("cb_gauge"), std::string::npos);
}

TEST(MetricsRegistryTest, ReleaseCallbacksKeepsOwnedInstrumentsAndOthers) {
  MetricsRegistry registry;
  int owner_a = 0;
  int owner_b = 0;
  registry.RegisterCounter("owned_total", "Owned.")->Increment();
  registry.RegisterCallbackCounter("cb_a_total", "A.", {},
                                   [] { return uint64_t{1}; }, &owner_a);
  registry.RegisterCallbackCounter("cb_b_total", "B.", {},
                                   [] { return uint64_t{2}; }, &owner_b);
  registry.ReleaseCallbacks(&owner_a);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("owned_total 1\n"), std::string::npos);
  EXPECT_EQ(text.find("cb_a_total"), std::string::npos);
  EXPECT_NE(text.find("cb_b_total 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossFree) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("hammer_total", "h");
  Histogram* h =
      registry.RegisterHistogram("hammer_hist", "h", {10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(i % 200));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
}

// The synthetic golden output must also satisfy the generic format checker
// used against live ServingEngine output in serving_engine_test.
TEST(MetricsRegistryTest, ExportPassesFormatChecker) {
  MetricsRegistry registry;
  registry.RegisterCounter("a_total", "A.")->Increment(9);
  registry.RegisterGauge("b", "B.", {{"x", "1"}})->Set(-2.25);
  registry.RegisterHistogram("c_hist", "C.", ExponentialBuckets(1, 2, 5))
      ->Observe(3.0);
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(registry.ExportText(), &error)) << error;
}

TEST(PrometheusTextCheckerTest, RejectsMalformedExposition) {
  std::string error;
  // Sample with no TYPE header.
  EXPECT_FALSE(CheckPrometheusText("orphan 1\n", &error));
  // Non-cumulative histogram buckets.
  EXPECT_FALSE(CheckPrometheusText(
      "# HELP h H.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
      &error));
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(CheckPrometheusText(
      "# HELP h H.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
      &error));
  // Missing +Inf bucket.
  EXPECT_FALSE(CheckPrometheusText(
      "# HELP h H.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", &error));
  // Unparseable value.
  EXPECT_FALSE(CheckPrometheusText(
      "# HELP g G.\n# TYPE g gauge\ng pretzel\n", &error));
  // A well-formed exposition passes.
  EXPECT_TRUE(CheckPrometheusText(
      "# HELP g G.\n# TYPE g gauge\ng{a=\"b\"} 1.5\n", &error))
      << error;
}

}  // namespace
}  // namespace longtail
