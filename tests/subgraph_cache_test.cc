// SubgraphCache: the serving layer's shared LRU of extracted walk
// subgraphs. Two contracts are locked down here:
//  1. Parity — cached batch results are bit-identical to uncached walks for
//     all five suite algorithms (HT, AT, AC1, AC2, DPPR) at 1 and 8
//     threads, cold and warm.
//  2. Safety under load — concurrent lookups, inserts, evictions and
//     clears never corrupt an adopted subgraph (hammer test, TSan-friendly:
//     no sleeps, bounded loops, all-or-nothing assertions at the end).
#include "graph/subgraph_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/pagerank.h"
#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "test_util.h"

namespace longtail {
namespace {

class SubgraphCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 100;
    spec.num_items = 80;
    spec.mean_user_degree = 10;
    spec.min_user_degree = 3;
    spec.num_genres = 5;
    spec.seed = 20121;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// The five walk/graph algorithms named by the parity requirement.
  static std::vector<std::unique_ptr<Recommender>> BuildSuite() {
    std::vector<std::unique_ptr<Recommender>> suite;
    suite.push_back(std::make_unique<HittingTimeRecommender>());
    suite.push_back(std::make_unique<AbsorbingTimeRecommender>());
    AbsorbingCostOptions ac;
    ac.lda.num_topics = 4;
    ac.lda.iterations = 15;
    suite.push_back(std::make_unique<AbsorbingCostRecommender>(
        EntropySource::kItemBased, ac));
    suite.push_back(std::make_unique<AbsorbingCostRecommender>(
        EntropySource::kTopicBased, ac));
    suite.push_back(
        std::make_unique<PageRankRecommender>(/*discounted=*/true));
    for (auto& rec : suite) {
      EXPECT_TRUE(rec->Fit(*data_).ok()) << rec->name();
    }
    return suite;
  }

  static std::vector<UserQuery> TestQueries(
      const std::vector<ItemId>& candidates) {
    std::vector<UserQuery> queries;
    for (UserId u = 0; u < std::min<UserId>(40, data_->num_users()); ++u) {
      UserQuery q;
      q.user = u;
      q.top_k = 10;
      q.score_items = candidates;
      queries.push_back(q);
    }
    return queries;
  }

  static Dataset* data_;
};

Dataset* SubgraphCacheTest::data_ = nullptr;

void ExpectIdenticalResults(const std::vector<UserQueryResult>& expected,
                            const std::vector<UserQueryResult>& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].status.ok(), actual[i].status.ok())
        << label << " query " << i;
    ASSERT_EQ(expected[i].top_k.size(), actual[i].top_k.size())
        << label << " query " << i;
    for (size_t k = 0; k < expected[i].top_k.size(); ++k) {
      EXPECT_EQ(expected[i].top_k[k].item, actual[i].top_k[k].item)
          << label << " query " << i << " pos " << k;
      // Bit-identical, not approximately equal: a cache hit must replay
      // the exact same walk.
      EXPECT_EQ(expected[i].top_k[k].score, actual[i].top_k[k].score)
          << label << " query " << i << " pos " << k;
    }
    EXPECT_EQ(expected[i].scores, actual[i].scores) << label << " query " << i;
  }
}

// Parity for all five algorithms at 1 and 8 threads: cold pass (all
// misses + inserts) and warm pass (hits) must both be bit-identical to the
// uncached batch.
TEST_F(SubgraphCacheTest, CachedBatchesAreBitIdenticalToUncached) {
  const std::vector<ItemId> candidates = {0, 3, 7, 11, 19, 42};
  const std::vector<UserQuery> queries = TestQueries(candidates);
  for (const auto& rec : BuildSuite()) {
    BatchOptions uncached;
    uncached.num_threads = 1;
    const std::vector<UserQueryResult> expected =
        rec->QueryBatch(queries, uncached);
    for (size_t threads : {1u, 8u}) {
      SubgraphCache cache;
      BatchOptions cached;
      cached.num_threads = threads;
      cached.subgraph_cache = &cache;
      const auto cold = rec->QueryBatch(queries, cached);
      ExpectIdenticalResults(expected, cold,
                             rec->name() + " cold@" +
                                 std::to_string(threads) + "t");
      const auto warm = rec->QueryBatch(queries, cached);
      ExpectIdenticalResults(expected, warm,
                             rec->name() + " warm@" +
                                 std::to_string(threads) + "t");
      const SubgraphCacheStats stats = cache.Stats();
      if (rec->name() == "DPPR") {
        // Not a subgraph walker: must ignore the cache entirely.
        EXPECT_EQ(stats.hits + stats.misses, 0u) << rec->name();
      } else {
        // The warm pass serves every query from cache.
        EXPECT_GE(stats.hits, queries.size()) << rec->name();
        EXPECT_GE(stats.inserts, 1u) << rec->name();
      }
    }
  }
}

// AT and AC1/AC2 share seed sets (user + rated items) and are fitted on
// the same dataset, so one cache serves all three: after AT fills it, an
// AC1 batch is all hits — extraction work is shared across recommenders.
TEST_F(SubgraphCacheTest, ExtractionsAreSharedAcrossRecommenders) {
  AbsorbingTimeRecommender at;
  ASSERT_TRUE(at.Fit(*data_).ok());
  AbsorbingCostOptions ac_options;
  ac_options.lda.num_topics = 4;
  ac_options.lda.iterations = 15;
  AbsorbingCostRecommender ac1(EntropySource::kItemBased, ac_options);
  ASSERT_TRUE(ac1.Fit(*data_).ok());
  ASSERT_EQ(at.graph().fingerprint(), ac1.graph().fingerprint());

  const std::vector<UserQuery> queries = TestQueries({});
  SubgraphCache cache;
  BatchOptions options;
  options.num_threads = 1;
  options.subgraph_cache = &cache;
  at.QueryBatch(queries, options);
  const uint64_t misses_after_at = cache.Stats().misses;
  EXPECT_EQ(misses_after_at, queries.size());

  BatchOptions uncached;
  uncached.num_threads = 1;
  const auto expected = ac1.QueryBatch(queries, uncached);
  const auto actual = ac1.QueryBatch(queries, options);
  ExpectIdenticalResults(expected, actual, "AC1 over AT's cache");
  const SubgraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, misses_after_at);  // no new extraction
  EXPECT_EQ(stats.hits, queries.size());
}

// HT seeds differ from AT seeds for the same user (query-user node vs.
// user + S_q), so the two must never share entries even on one dataset.
TEST_F(SubgraphCacheTest, DifferentSeedSetsNeverCollide) {
  HittingTimeRecommender ht;
  AbsorbingTimeRecommender at;
  ASSERT_TRUE(ht.Fit(*data_).ok());
  ASSERT_TRUE(at.Fit(*data_).ok());
  const std::vector<UserQuery> queries = TestQueries({});
  SubgraphCache cache;
  BatchOptions options;
  options.num_threads = 1;
  options.subgraph_cache = &cache;
  at.QueryBatch(queries, options);
  BatchOptions uncached;
  uncached.num_threads = 1;
  const auto expected = ht.QueryBatch(queries, uncached);
  const auto actual = ht.QueryBatch(queries, options);
  ExpectIdenticalResults(expected, actual, "HT after AT");
  // HT found none of AT's entries.
  EXPECT_EQ(cache.Stats().misses, 2 * queries.size());
}

// ---------------------------------------------------------------- LRU core

/// Extracts the subgraph seeded at `user` into `ws` and returns its key.
uint64_t ExtractAndKey(const BipartiteGraph& g, UserId user,
                       const SubgraphOptions& options, WalkWorkspace* ws) {
  const std::vector<NodeId> seeds = {g.UserNode(user)};
  ExtractSubgraphInto(g, seeds, options, ws);
  return SubgraphCache::Key(g.fingerprint(), seeds, options);
}

TEST(SubgraphCacheLruTest, EvictsLeastRecentlyUsedFirst) {
  const Dataset data = testing::MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);
  SubgraphCacheOptions cache_options;
  cache_options.max_entries = 2;
  cache_options.num_shards = 1;
  SubgraphCache cache(cache_options);
  const SubgraphOptions sub_options;
  WalkWorkspace ws;

  const std::vector<NodeId> s0 = {g.UserNode(0)};
  const std::vector<NodeId> s1 = {g.UserNode(1)};
  const std::vector<NodeId> s2 = {g.UserNode(2)};
  const uint64_t k0 = SubgraphCache::Key(g.fingerprint(), s0, sub_options);
  const uint64_t k1 = SubgraphCache::Key(g.fingerprint(), s1, sub_options);
  const uint64_t k2 = SubgraphCache::Key(g.fingerprint(), s2, sub_options);

  ExtractSubgraphInto(g, s0, sub_options, &ws);
  cache.Insert(k0, g.fingerprint(), s0, sub_options, ws);
  ExtractSubgraphInto(g, s1, sub_options, &ws);
  cache.Insert(k1, g.fingerprint(), s1, sub_options, ws);
  EXPECT_EQ(cache.Stats().entries, 2u);

  // Touch k0 so k1 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(k0, g, s0, sub_options, &ws));
  ExtractSubgraphInto(g, s2, sub_options, &ws);
  cache.Insert(k2, g.fingerprint(), s2, sub_options, ws);

  const SubgraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_TRUE(cache.Lookup(k0, g, s0, sub_options, &ws));
  EXPECT_FALSE(cache.Lookup(k1, g, s1, sub_options, &ws));
  EXPECT_TRUE(cache.Lookup(k2, g, s2, sub_options, &ws));
}

TEST(SubgraphCacheLruTest, AdoptedSubgraphMatchesFreshExtraction) {
  const Dataset data = testing::MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);
  SubgraphCache cache;
  const SubgraphOptions sub_options;

  const std::vector<NodeId> seeds = {g.UserNode(1)};
  WalkWorkspace fresh;
  const uint64_t key = ExtractAndKey(g, 1, sub_options, &fresh);
  cache.Insert(key, g.fingerprint(), seeds, sub_options, fresh);

  WalkWorkspace adopted;
  // Overwrite the adopting workspace with another query first, so stale
  // mappings must be invalidated by the adoption.
  ExtractAndKey(g, 3, sub_options, &adopted);
  ASSERT_TRUE(cache.Lookup(key, g, seeds, sub_options, &adopted));

  const Subgraph& a = fresh.sub();
  const Subgraph& b = adopted.sub();
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.items, b.items);
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
    const auto an = a.graph.Neighbors(v);
    const auto bn = b.graph.Neighbors(v);
    ASSERT_EQ(an.size(), bn.size()) << "node " << v;
    for (size_t e = 0; e < an.size(); ++e) {
      EXPECT_EQ(an[e], bn[e]);
      EXPECT_EQ(a.graph.Weights(v)[e], b.graph.Weights(v)[e]);
    }
    EXPECT_EQ(a.graph.WeightedDegree(v), b.graph.WeightedDegree(v));
  }
  // Reverse lookups answer through the adopting workspace's tables.
  for (size_t lu = 0; lu < b.users.size(); ++lu) {
    EXPECT_EQ(b.LocalUserNode(b.users[lu]), static_cast<NodeId>(lu));
  }
  for (size_t li = 0; li < b.items.size(); ++li) {
    EXPECT_EQ(b.LocalItemNode(b.items[li]),
              static_cast<NodeId>(b.users.size() + li));
  }
  // Nodes outside the adopted subgraph — including ones only present in
  // the overwritten query — resolve to -1.
  for (UserId u = 0; u < data.num_users(); ++u) {
    bool inside = false;
    for (UserId su : b.users) inside |= (su == u);
    if (!inside) EXPECT_EQ(b.LocalUserNode(u), -1) << u;
  }
}

// A cache hit adopts the payload's WalkLayout by pointer — the permutation
// is built exactly once, at admission — and a kernel sweeping through the
// adopted layout stays bit-identical to an uncached identity-order walk.
TEST(SubgraphCacheLruTest, CacheHitReusesPayloadLayoutWithoutRepermuting) {
  const Dataset data = testing::MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);
  SubgraphCacheOptions cache_options;
  // Production only reorders past the cache-geometry threshold; force the
  // build so the adoption path is exercised at CI size.
  cache_options.always_build_layout = true;
  SubgraphCache cache(cache_options);
  const SubgraphOptions sub_options;
  const std::vector<NodeId> seeds = {g.UserNode(1)};

  WalkWorkspace leader;
  cache.GetOrExtract(g, seeds, sub_options, &leader);
  const std::shared_ptr<const WalkLayout> built = leader.sub().layout;
  ASSERT_NE(nullptr, built);

  WalkWorkspace adopter;
  cache.GetOrExtract(g, seeds, sub_options, &adopter);
  EXPECT_EQ(1u, cache.Stats().hits);
  // Same layout object, shared by pointer: the hit did not re-permute.
  EXPECT_EQ(built.get(), adopter.sub().layout.get());

  WalkWorkspace uncached;
  ExtractSubgraphInto(g, seeds, sub_options, &uncached);
  EXPECT_EQ(nullptr, uncached.sub().layout);

  const int32_t n = uncached.sub().graph.num_nodes();
  ASSERT_EQ(n, adopter.sub().graph.num_nodes());
  std::vector<bool> absorbing(n, false);
  for (int32_t v = 0; v < n; ++v) absorbing[v] = v % 3 == 0;
  const std::vector<double> costs(n, 1.0);
  auto sweep = [&](WalkWorkspace& ws, std::vector<double>* value) {
    // The graph_recommender_base.cc idiom: the payload's layout (if any)
    // rides into BuildTransitions, so cache hits sweep pre-permuted.
    ws.kernel.BuildTransitions(ws.sub().graph,
                               WalkKernel::Normalization::kRowStochastic,
                               ws.sub().layout);
    ws.kernel.CompileAbsorbingSweep(absorbing, costs);
    std::vector<double> scratch;
    ws.kernel.SweepTruncated(15, value, &scratch);
  };
  std::vector<double> via_cache, direct;
  sweep(adopter, &via_cache);
  EXPECT_TRUE(adopter.kernel.reordered());
  sweep(uncached, &direct);
  EXPECT_FALSE(uncached.kernel.reordered());
  ASSERT_EQ(direct.size(), via_cache.size());
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_EQ(direct[v], via_cache[v]) << "node " << v;
  }
}

TEST(SubgraphCacheLruTest, KeyDependsOnEveryInput) {
  const Dataset data = testing::MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);
  const std::vector<NodeId> seeds = {g.UserNode(0), g.ItemNode(1)};
  SubgraphOptions options;
  const uint64_t base = SubgraphCache::Key(g.fingerprint(), seeds, options);
  EXPECT_EQ(base, SubgraphCache::Key(g.fingerprint(), seeds, options));

  SubgraphOptions other_mu = options;
  other_mu.max_items = 3;
  EXPECT_NE(base, SubgraphCache::Key(g.fingerprint(), seeds, other_mu));
  const std::vector<NodeId> reordered = {g.ItemNode(1), g.UserNode(0)};
  EXPECT_NE(base, SubgraphCache::Key(g.fingerprint(), reordered, options));
  EXPECT_NE(base, SubgraphCache::Key(g.fingerprint() + 1, seeds, options));

  // The unweighted graph has different content, hence a different
  // fingerprint and key space.
  const BipartiteGraph unweighted =
      BipartiteGraph::FromDataset(data, /*weighted=*/false);
  EXPECT_NE(g.fingerprint(), unweighted.fingerprint());
}

TEST(SubgraphCacheLruTest, ClearDropsEntriesAndCounters) {
  const Dataset data = testing::MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);
  SubgraphCache cache;
  const SubgraphOptions sub_options;
  WalkWorkspace ws;
  const std::vector<NodeId> seeds = {g.UserNode(0)};
  const uint64_t key = ExtractAndKey(g, 0, sub_options, &ws);
  cache.Insert(key, g.fingerprint(), seeds, sub_options, ws);
  ASSERT_TRUE(cache.Lookup(key, g, seeds, sub_options, &ws));
  EXPECT_GT(cache.Stats().resident_bytes, 0u);
  cache.Clear();
  const SubgraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_FALSE(cache.Lookup(key, g, seeds, sub_options, &ws));
}

TEST(SubgraphCacheLruTest, ByteBudgetEvicts) {
  const Dataset data = testing::MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);
  SubgraphCacheOptions cache_options;
  cache_options.max_entries = 64;
  cache_options.num_shards = 1;
  cache_options.max_bytes = 1;  // Absurdly small: every insert overflows.
  SubgraphCache cache(cache_options);
  const SubgraphOptions sub_options;
  WalkWorkspace ws;
  for (UserId u = 0; u < 4; ++u) {
    const std::vector<NodeId> seeds = {g.UserNode(u)};
    const uint64_t key = ExtractAndKey(g, u, sub_options, &ws);
    cache.Insert(key, g.fingerprint(), seeds, sub_options, ws);
  }
  // The budget keeps at most one resident entry (never evicts below one).
  EXPECT_LE(cache.Stats().entries, 1u);
  EXPECT_GE(cache.Stats().evictions, 3u);
}

// ------------------------------------------------------------- hammer test

// Concurrent lookups, inserts and evictions on a cache sized far below the
// working set, plus periodic Clear() calls. Every adopted subgraph must
// match a fresh extraction for its seeds — eviction or clearing can cost a
// hit but can never corrupt a result.
TEST(SubgraphCacheHammerTest, ConcurrentLookupInsertEvictClear) {
  SyntheticSpec spec;
  spec.num_users = 64;
  spec.num_items = 48;
  spec.mean_user_degree = 8;
  spec.min_user_degree = 2;
  spec.num_genres = 4;
  spec.seed = 777;
  auto generated = GenerateSyntheticData(spec);
  ASSERT_TRUE(generated.ok());
  const Dataset data = std::move(generated).value().dataset;
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);

  SubgraphCacheOptions cache_options;
  cache_options.max_entries = 8;  // working set is 64 users → constant churn
  cache_options.num_shards = 2;
  SubgraphCache cache(cache_options);
  const SubgraphOptions sub_options;

  // Reference extractions, one per user, computed serially up front.
  std::vector<std::vector<UserId>> expected_users(data.num_users());
  std::vector<std::vector<ItemId>> expected_items(data.num_users());
  {
    WalkWorkspace ws;
    for (UserId u = 0; u < data.num_users(); ++u) {
      ExtractSubgraphInto(g, {g.UserNode(u)}, sub_options, &ws);
      expected_users[u] = ws.sub().users;
      expected_items[u] = ws.sub().items;
    }
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::atomic<int> corruptions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WalkWorkspace ws;
      for (int i = 0; i < kItersPerThread; ++i) {
        // Threads sweep the user space with different strides so lookups,
        // inserts and evictions interleave on the same shards.
        const UserId u = static_cast<UserId>((i * (2 * t + 1) + t * 7) %
                                             data.num_users());
        const std::vector<NodeId> seeds = {g.UserNode(u)};
        const uint64_t key =
            SubgraphCache::Key(g.fingerprint(), seeds, sub_options);
        if (!cache.Lookup(key, g, seeds, sub_options, &ws)) {
          ExtractSubgraphInto(g, seeds, sub_options, &ws);
          cache.Insert(key, g.fingerprint(), seeds, sub_options, ws);
        }
        if (ws.sub().users != expected_users[u] ||
            ws.sub().items != expected_items[u]) {
          corruptions.fetch_add(1);
        }
        if (t == 0 && i % 101 == 100) cache.Clear();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corruptions.load(), 0);

  const SubgraphCacheStats stats = cache.Stats();
  // Post-Clear counters still reflect the final stretch; the structural
  // invariants must hold regardless of interleaving.
  EXPECT_LE(stats.entries, 8u);
}

// ---------------------------------------------------------- single flight

// Deterministic coalescing proof: the leader is held open (test hook)
// until the other N-1 threads have registered as waiters behind its
// in-flight ticket, so exactly one extraction runs, every duplicate
// adopts the leader's payload, and none of them touches the LRU.
TEST(SubgraphCacheSingleFlightTest, WaitersAdoptTheLeadersExtraction) {
  const Dataset data = testing::MakeFigure2Dataset();
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);
  SubgraphCache cache;
  const SubgraphOptions sub_options;
  const std::vector<NodeId> seeds = {g.UserNode(1), g.ItemNode(0)};
  constexpr int kThreads = 4;
  cache.SetLeaderExtractHookForTesting([&cache] {
    // Spin (no sleeps) until every other thread is a registered waiter;
    // waiters count themselves *before* blocking on the ticket.
    while (cache.Stats().coalesced_waits <
           static_cast<uint64_t>(kThreads - 1)) {
      std::this_thread::yield();
    }
  });

  WalkWorkspace reference;
  ExtractSubgraphInto(g, seeds, sub_options, &reference);
  const std::vector<UserId> want_users = reference.sub().users;
  const std::vector<ItemId> want_items = reference.sub().items;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      WalkWorkspace ws;
      cache.GetOrExtract(g, seeds, sub_options, &ws);
      if (ws.sub().users != want_users || ws.sub().items != want_items) {
        mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  const SubgraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u) << "a duplicate extraction ran";
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.coalesced_waits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.hits, 0u);

  // The published entry is a normal LRU resident afterwards.
  WalkWorkspace late;
  cache.GetOrExtract(g, seeds, sub_options, &late);
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(late.sub().users, want_users);
  EXPECT_EQ(late.sub().items, want_items);
}

// GetOrExtract under churn: hot keys, a cache far below the working set
// (constant eviction), and periodic Clear() calls — adopted subgraphs must
// always match a fresh extraction, and total extractions for a key never
// exceed what misses report.
TEST(SubgraphCacheHammerTest, ConcurrentGetOrExtractEvictClear) {
  SyntheticSpec spec;
  spec.num_users = 48;
  spec.num_items = 40;
  spec.mean_user_degree = 7;
  spec.min_user_degree = 2;
  spec.num_genres = 4;
  spec.seed = 778;
  auto generated = GenerateSyntheticData(spec);
  ASSERT_TRUE(generated.ok());
  const Dataset data = std::move(generated).value().dataset;
  const BipartiteGraph g = BipartiteGraph::FromDataset(data);

  SubgraphCacheOptions cache_options;
  cache_options.max_entries = 6;
  cache_options.num_shards = 2;
  SubgraphCache cache(cache_options);
  const SubgraphOptions sub_options;

  std::vector<std::vector<UserId>> expected_users(data.num_users());
  std::vector<std::vector<ItemId>> expected_items(data.num_users());
  {
    WalkWorkspace ws;
    for (UserId u = 0; u < data.num_users(); ++u) {
      ExtractSubgraphInto(g, {g.UserNode(u)}, sub_options, &ws);
      expected_users[u] = ws.sub().users;
      expected_items[u] = ws.sub().items;
    }
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 300;
  std::atomic<int> corruptions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WalkWorkspace ws;
      for (int i = 0; i < kItersPerThread; ++i) {
        // A small hot set maximizes identical concurrent misses (the
        // single-flight path) while evictions churn the residents.
        const UserId u = static_cast<UserId>((i + t) % 12);
        const std::vector<NodeId> seeds = {g.UserNode(u)};
        cache.GetOrExtract(g, seeds, sub_options, &ws);
        if (ws.sub().users != expected_users[u] ||
            ws.sub().items != expected_items[u]) {
          corruptions.fetch_add(1);
        }
        if (t == 0 && i % 97 == 96) cache.Clear();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corruptions.load(), 0);
  EXPECT_LE(cache.Stats().entries, 6u);
}

}  // namespace
}  // namespace longtail
