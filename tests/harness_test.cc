#include "eval/harness.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "data/generator.h"
#include "data/split.h"

namespace longtail {
namespace {

SuiteOptions FastSuiteOptions() {
  SuiteOptions options;
  options.walk.iterations = 10;
  options.walk.max_subgraph_items = 0;
  options.lda.num_topics = 4;
  options.lda.iterations = 15;
  options.svd.num_factors = 8;
  return options;
}

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.03));
    ASSERT_TRUE(data.ok());
    corpus_ = new SyntheticData(std::move(data).value());
    auto suite = BuildAndFitSuite(corpus_->dataset, FastSuiteOptions());
    ASSERT_TRUE(suite.ok());
    suite_ = new AlgorithmSuite(std::move(suite).value());
  }
  static void TearDownTestSuite() {
    delete suite_;
    delete corpus_;
    suite_ = nullptr;
    corpus_ = nullptr;
  }

  static SyntheticData* corpus_;
  static AlgorithmSuite* suite_;
};

SyntheticData* HarnessTest::corpus_ = nullptr;
AlgorithmSuite* HarnessTest::suite_ = nullptr;

TEST_F(HarnessTest, BuildsThePaperSeven) {
  ASSERT_EQ(suite_->algorithms.size(), 7u);
  const std::vector<std::string> expected = {"AC2",  "AC1",     "AT", "HT",
                                             "DPPR", "PureSVD", "LDA"};
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(suite_->algorithms[k]->name(), expected[k]);
  }
}

TEST_F(HarnessTest, FindLocatesAlgorithms) {
  EXPECT_NE(suite_->Find("AC2"), nullptr);
  EXPECT_NE(suite_->Find("PureSVD"), nullptr);
  EXPECT_EQ(suite_->Find("nope"), nullptr);
}

TEST_F(HarnessTest, EveryAlgorithmServesQueries) {
  const std::vector<UserId> users =
      SampleTestUsers(corpus_->dataset, 5, 10, 3);
  ASSERT_FALSE(users.empty());
  for (const auto& alg : suite_->algorithms) {
    auto top = alg->RecommendTopK(users[0], 5);
    ASSERT_TRUE(top.ok()) << alg->name() << ": " << top.status().ToString();
    EXPECT_GE(top->size(), 1u) << alg->name();
  }
}

TEST_F(HarnessTest, EvaluateTopNProducesFullReport) {
  const std::vector<UserId> users =
      SampleTestUsers(corpus_->dataset, 20, 10, 3);
  auto report = EvaluateTopN(*suite_->Find("AT"), corpus_->dataset, users, 10,
                             &corpus_->ontology);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "AT");
  EXPECT_EQ(report->popularity_at.size(), 10u);
  EXPECT_GT(report->diversity, 0.0);
  EXPECT_LE(report->diversity, 1.0);
  EXPECT_GT(report->similarity, 0.0);
  EXPECT_LE(report->similarity, 1.0);
  EXPECT_GT(report->seconds_per_user, 0.0);
}

TEST_F(HarnessTest, EvaluateTopNWithoutOntologyZeroesSimilarity) {
  const std::vector<UserId> users =
      SampleTestUsers(corpus_->dataset, 10, 10, 5);
  auto report = EvaluateTopN(*suite_->Find("HT"), corpus_->dataset, users,
                             5, /*ontology=*/nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->similarity, 0.0);
  EXPECT_GT(report->diversity, 0.0);
}

TEST_F(HarnessTest, ExtraBaselinesOptIn) {
  SuiteOptions options = FastSuiteOptions();
  options.include_extra_baselines = true;
  auto suite = BuildAndFitSuite(corpus_->dataset, options);
  ASSERT_TRUE(suite.ok());
  EXPECT_EQ(suite->algorithms.size(), 10u);
  EXPECT_NE(suite->Find("MostPopular"), nullptr);
  EXPECT_NE(suite->Find("ItemKNN"), nullptr);
  EXPECT_NE(suite->Find("Katz"), nullptr);
}

TEST_F(HarnessTest, FitOrLoadRoundTripsThroughCheckpointDir) {
  const std::string dir = ::testing::TempDir() + "/harness_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SuiteOptions options = FastSuiteOptions();
  options.checkpoint_dir = dir;

  // First run fits everything (no checkpoints yet) and writes them back.
  auto first = BuildAndFitSuite(corpus_->dataset, options);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->loaded_from_checkpoint.empty());
  EXPECT_TRUE(std::filesystem::exists(dir + "/AC2.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/LDA.ckpt"));

  // Second run cold-starts from the directory and serves identical
  // recommendations. Every algorithm loads except the LDA baseline, which
  // by design always adopts AC2's (here: loaded) model instead of reading
  // its own checkpoint — so its output is identical all the same.
  auto second = BuildAndFitSuite(corpus_->dataset, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->loaded_from_checkpoint.size(),
            second->algorithms.size() - 1);
  for (const auto& alg : second->algorithms) {
    EXPECT_EQ(second->WasLoadedFromCheckpoint(alg->name()),
              alg->name() != "LDA")
        << alg->name();
    const auto want = first->Find(alg->name())->RecommendTopK(1, 5);
    const auto got = alg->RecommendTopK(1, 5);
    ASSERT_EQ(want.ok(), got.ok()) << alg->name();
    if (!want.ok()) continue;
    ASSERT_EQ(want->size(), got->size()) << alg->name();
    for (size_t k = 0; k < want->size(); ++k) {
      EXPECT_EQ((*want)[k].item, (*got)[k].item) << alg->name();
      EXPECT_EQ((*want)[k].score, (*got)[k].score) << alg->name();
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_F(HarnessTest, LdaBaselineSharesAc2Model) {
  // The LDA baseline must reproduce AC2's trained model exactly (same
  // scores), demonstrating model adoption instead of retraining.
  const auto* ac2 =
      dynamic_cast<const AbsorbingCostRecommender*>(suite_->Find("AC2"));
  ASSERT_NE(ac2, nullptr);
  ASSERT_TRUE(ac2->lda_model().has_value());
  const auto* lda = suite_->Find("LDA");
  const std::vector<ItemId> items = {0, 1, 2};
  auto scores = lda->ScoreItems(0, items);
  ASSERT_TRUE(scores.ok());
  for (size_t k = 0; k < items.size(); ++k) {
    EXPECT_DOUBLE_EQ((*scores)[k], ac2->lda_model()->Score(0, items[k]));
  }
}

}  // namespace
}  // namespace longtail
