#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace longtail {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 → 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, NegativeValues) {
  RunningStat s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(PercentileTest, MedianOfOdd) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 9.0);
}

TEST(PercentileTest, LinearInterpolation) {
  // Sorted: 10, 20, 30, 40. p=25 → rank 0.75 → 17.5.
  EXPECT_DOUBLE_EQ(Percentile({40.0, 10.0, 30.0, 20.0}, 25.0), 17.5);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
}

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_NEAR(GiniCoefficient({5.0, 5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(GiniTest, TotalConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 100.0;
  // Gini of one-holder distribution is (n-1)/n.
  EXPECT_NEAR(GiniCoefficient(v), 0.99, 1e-9);
}

TEST(GiniTest, KnownSmallCase) {
  // {1, 3}: Gini = 0.25.
  EXPECT_NEAR(GiniCoefficient({1.0, 3.0}), 0.25, 1e-12);
}

TEST(GiniTest, ScaleInvariant) {
  std::vector<double> a = {1.0, 2.0, 3.0, 10.0};
  std::vector<double> b = {10.0, 20.0, 30.0, 100.0};
  EXPECT_NEAR(GiniCoefficient(a), GiniCoefficient(b), 1e-12);
}

TEST(GiniTest, AllZerosIsZero) {
  EXPECT_EQ(GiniCoefficient({0.0, 0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace longtail
