// Corruption robustness for the binary persistence formats: a serving
// process must survive any damaged artifact with a clean Status — never a
// crash, never silently loaded garbage. The fuzz surface here is
// exhaustive over the failure classes a filesystem can produce:
// truncation at every byte (covers every section boundary), a single bit
// flipped anywhere (covers the checksum trailer and every length field),
// wrong magic/version tags, and hostile hand-crafted headers whose length
// fields would request multi-gigabyte allocations.
//
// The same battery runs against the chunked checkpoint container (model
// checkpoints): per-chunk checksums must catch every flip, chunk lengths
// must be validated against the file before allocating, a missing end
// marker must read as truncation — and a well-formed chunk with an
// *unknown* tag must be skipped, loading successfully (the container's
// forward-compatibility contract).
#include "data/serialization.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hitting_time.h"
#include "serving/model_registry.h"
#include "test_util.h"
#include "util/hash.h"

namespace longtail {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A dataset exercising every section of the format: ratings, genre
/// metadata, category/preference arrays and labels.
Dataset MakeRichDataset() {
  Dataset data = testing::MakeFigure2Dataset();
  data.num_genres = 3;
  data.item_genres = {0, 1, 2, 0, 1, 2};
  data.item_categories = {5, 4, 3, 2, 1, 0};
  data.user_genre_prefs = {0.5, 0.25, 0.25, 0.1, 0.8, 0.1,
                           0.3, 0.3,  0.4,  1.0, 0.0, 0.0,
                           0.2, 0.2,  0.6};
  data.item_labels = {"m1", "m2", "m3", "m4", "m5", "m6"};
  return data;
}

LdaModel MakeSmallModel() {
  DenseMatrix theta(3, 2);
  theta.data() = {0.75, 0.25, 0.5, 0.5, 0.1, 0.9};
  DenseMatrix phi(2, 4);
  phi.data() = {0.4, 0.3, 0.2, 0.1, 0.1, 0.2, 0.3, 0.4};
  auto model = LdaModel::FromParameters(std::move(theta), std::move(phi));
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

class SerializationFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_path_ = TempPath("fuzz_dataset.bin");
    model_path_ = TempPath("fuzz_model.bin");
    checkpoint_path_ = TempPath("fuzz_checkpoint.ckpt");
    dataset_ = MakeRichDataset();
    ASSERT_TRUE(SaveDatasetBinary(*dataset_, dataset_path_).ok());
    ASSERT_TRUE(SaveLdaModel(MakeSmallModel(), model_path_).ok());
    // A graph-walker checkpoint exercises the richest chunk set: header,
    // walk options, and the CSR bipartite-graph chunk with its structural
    // validation.
    ht_ = std::make_unique<HittingTimeRecommender>();
    ASSERT_TRUE(ht_->Fit(*dataset_).ok());
    ASSERT_TRUE(SaveModelCheckpoint(*ht_, checkpoint_path_).ok());
    dataset_bytes_ = ReadFileBytes(dataset_path_);
    model_bytes_ = ReadFileBytes(model_path_);
    checkpoint_bytes_ = ReadFileBytes(checkpoint_path_);
    ASSERT_GT(dataset_bytes_.size(), 16u);
    ASSERT_GT(model_bytes_.size(), 16u);
    ASSERT_GT(checkpoint_bytes_.size(), 48u);
  }

  /// Loads a checkpoint byte string through the registry cold-start path.
  Result<std::unique_ptr<Recommender>> LoadCheckpointBytes(
      const std::vector<char>& bytes) {
    const std::string path = TempPath("mutated_checkpoint.ckpt");
    WriteFileBytes(path, bytes);
    return LoadModelCheckpoint(path, *dataset_);
  }

  std::string dataset_path_;
  std::string model_path_;
  std::string checkpoint_path_;
  std::optional<Dataset> dataset_;
  std::unique_ptr<HittingTimeRecommender> ht_;
  std::vector<char> dataset_bytes_;
  std::vector<char> model_bytes_;
  std::vector<char> checkpoint_bytes_;
};

TEST_F(SerializationFuzzTest, RoundTripBaselineStillLoads) {
  auto data = LoadDatasetBinary(dataset_path_);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->num_users(), 5);
  EXPECT_EQ(data->num_items(), 6);
  EXPECT_EQ(data->item_labels.size(), 6u);
  auto model = LoadLdaModel(model_path_);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->num_topics(), 2);
}

TEST_F(SerializationFuzzTest, DatasetTruncatedAtEveryByteFailsCleanly) {
  const std::string path = TempPath("truncated_dataset.bin");
  for (size_t len = 0; len < dataset_bytes_.size(); ++len) {
    WriteFileBytes(path, std::vector<char>(dataset_bytes_.begin(),
                                           dataset_bytes_.begin() + len));
    auto result = LoadDatasetBinary(path);
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST_F(SerializationFuzzTest, ModelTruncatedAtEveryByteFailsCleanly) {
  const std::string path = TempPath("truncated_model.bin");
  for (size_t len = 0; len < model_bytes_.size(); ++len) {
    WriteFileBytes(path, std::vector<char>(model_bytes_.begin(),
                                           model_bytes_.begin() + len));
    auto result = LoadLdaModel(path);
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST_F(SerializationFuzzTest, EveryBitFlipInChecksumTrailerIsRejected) {
  const std::string path = TempPath("trailer_flip.bin");
  const size_t trailer = dataset_bytes_.size() - sizeof(uint64_t);
  for (size_t byte = trailer; byte < dataset_bytes_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> mutated = dataset_bytes_;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      WriteFileBytes(path, mutated);
      auto result = LoadDatasetBinary(path);
      EXPECT_FALSE(result.ok())
          << "trailer byte " << byte << " bit " << bit << " loaded";
    }
  }
}

// A single bit flipped anywhere in the file — magic, dimensions, length
// prefixes, payload, checksum — must be rejected. FNV-1a's update is a
// state bijection per byte, so any one-byte change provably changes the
// final checksum; length-field flips are caught earlier by the structural
// and remaining-bytes guards.
TEST_F(SerializationFuzzTest, SingleBitFlipsAcrossDatasetAreRejected) {
  const std::string path = TempPath("dataset_flip.bin");
  for (size_t byte = 0; byte < dataset_bytes_.size(); ++byte) {
    const int bit = static_cast<int>(byte % 8);
    std::vector<char> mutated = dataset_bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
    WriteFileBytes(path, mutated);
    auto result = LoadDatasetBinary(path);
    EXPECT_FALSE(result.ok()) << "byte " << byte << " bit " << bit
                              << " loaded";
  }
}

TEST_F(SerializationFuzzTest, SingleBitFlipsAcrossModelAreRejected) {
  const std::string path = TempPath("model_flip.bin");
  for (size_t byte = 0; byte < model_bytes_.size(); ++byte) {
    const int bit = static_cast<int>(byte % 8);
    std::vector<char> mutated = model_bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
    WriteFileBytes(path, mutated);
    auto result = LoadLdaModel(path);
    EXPECT_FALSE(result.ok()) << "byte " << byte << " bit " << bit
                              << " loaded";
  }
}

TEST_F(SerializationFuzzTest, WrongMagicAndVersionAreRejected) {
  const std::string path = TempPath("magic.bin");
  // An LDA model file is not a dataset and vice versa.
  EXPECT_FALSE(LoadDatasetBinary(model_path_).ok());
  EXPECT_FALSE(LoadLdaModel(dataset_path_).ok());
  // Bumped format version.
  {
    std::vector<char> mutated = dataset_bytes_;
    mutated[7] = '2';  // "LTDS0001" → "LTDS0002"
    WriteFileBytes(path, mutated);
    EXPECT_FALSE(LoadDatasetBinary(path).ok());
  }
  // Garbage magic.
  {
    std::vector<char> mutated = dataset_bytes_;
    std::memset(mutated.data(), 0, 8);
    WriteFileBytes(path, mutated);
    EXPECT_FALSE(LoadDatasetBinary(path).ok());
  }
  // Empty file and missing file.
  WriteFileBytes(path, {});
  EXPECT_FALSE(LoadDatasetBinary(path).ok());
  EXPECT_FALSE(LoadDatasetBinary(TempPath("does_not_exist.bin")).ok());
}

// Hand-crafted headers with plausible-looking but hostile length fields:
// the loader must refuse before attempting the implied allocation (the
// remaining-bytes guard), not after exhausting memory.
TEST_F(SerializationFuzzTest, HostileLengthFieldsAreRejectedBeforeAllocation) {
  const std::string path = TempPath("hostile.bin");
  {
    // Dataset header claiming 500k ratings in a file with no rating bytes:
    // num_users * num_items makes the count look plausible.
    std::vector<char> bytes(dataset_bytes_.begin(),
                            dataset_bytes_.begin() + 8);
    const int32_t users = 40000, items = 30000;
    const uint64_t ratings = 500000;
    const char* p = reinterpret_cast<const char*>(&users);
    bytes.insert(bytes.end(), p, p + 4);
    p = reinterpret_cast<const char*>(&items);
    bytes.insert(bytes.end(), p, p + 4);
    p = reinterpret_cast<const char*>(&ratings);
    bytes.insert(bytes.end(), p, p + 8);
    WriteFileBytes(path, bytes);
    EXPECT_FALSE(LoadDatasetBinary(path).ok());
  }
  {
    // LDA header whose dimensions pass the element-count cap but imply a
    // multi-gigabyte theta matrix that the file cannot possibly contain.
    std::vector<char> bytes(model_bytes_.begin(), model_bytes_.begin() + 8);
    const uint64_t users = 270000000, items = 4;
    const int32_t topics = 3;
    const uint64_t theta_len = users * static_cast<uint64_t>(topics);
    const char* p = reinterpret_cast<const char*>(&users);
    bytes.insert(bytes.end(), p, p + 8);
    p = reinterpret_cast<const char*>(&items);
    bytes.insert(bytes.end(), p, p + 8);
    p = reinterpret_cast<const char*>(&topics);
    bytes.insert(bytes.end(), p, p + 4);
    p = reinterpret_cast<const char*>(&theta_len);
    bytes.insert(bytes.end(), p, p + 8);
    WriteFileBytes(path, bytes);
    EXPECT_FALSE(LoadLdaModel(path).ok());
  }
}

// Appending trailing garbage leaves the checksum (read at the cursor, not
// end-of-file) intact — the canonical prefix still parses. Prepending or
// inserting bytes shifts everything and must fail.
TEST_F(SerializationFuzzTest, InsertedBytesAreRejected) {
  const std::string path = TempPath("inserted.bin");
  std::vector<char> mutated = dataset_bytes_;
  mutated.insert(mutated.begin() + 12, 4, '\x7f');
  WriteFileBytes(path, mutated);
  EXPECT_FALSE(LoadDatasetBinary(path).ok());
}

// ------------------------------------------------------------------------
// Chunked checkpoint container (model checkpoints).
// ------------------------------------------------------------------------

TEST_F(SerializationFuzzTest, CheckpointRoundTripBaselineStillLoads) {
  auto loaded = LoadModelCheckpoint(checkpoint_path_, *dataset_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "HT");
}

// A file ending anywhere before the end-marker chunk — mid-magic,
// mid-chunk-header, mid-payload, mid-checksum — is truncation and must be
// rejected; only the end marker may terminate the stream.
TEST_F(SerializationFuzzTest, CheckpointTruncatedAtEveryByteFailsCleanly) {
  for (size_t len = 0; len < checkpoint_bytes_.size(); ++len) {
    auto result = LoadCheckpointBytes(std::vector<char>(
        checkpoint_bytes_.begin(), checkpoint_bytes_.begin() + len));
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes loaded";
  }
}

// Every byte of the container is covered by either the magic comparison
// or a per-chunk FNV-1a checksum (which spans the chunk's tag, version,
// length *and* payload), so any single-bit flip must be rejected.
TEST_F(SerializationFuzzTest, SingleBitFlipsAcrossCheckpointAreRejected) {
  for (size_t byte = 0; byte < checkpoint_bytes_.size(); ++byte) {
    const int bit = static_cast<int>(byte % 8);
    std::vector<char> mutated = checkpoint_bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
    auto result = LoadCheckpointBytes(mutated);
    EXPECT_FALSE(result.ok()) << "byte " << byte << " bit " << bit
                              << " loaded";
  }
}

// Hostile chunk lengths: the loader must refuse before attempting the
// implied allocation. Both the container framing (chunk length vs bytes
// remaining in the file) and the in-chunk array/string guards are probed.
TEST_F(SerializationFuzzTest,
       HostileCheckpointChunkLengthsRejectedBeforeAllocation) {
  // Container level: a chunk header claiming an exabyte payload.
  {
    std::vector<char> bytes(checkpoint_bytes_.begin(),
                            checkpoint_bytes_.begin() + 8);
    const uint32_t tag = 1, version = 1;
    const uint64_t huge = 1ULL << 60;
    const char* p = reinterpret_cast<const char*>(&tag);
    bytes.insert(bytes.end(), p, p + 4);
    p = reinterpret_cast<const char*>(&version);
    bytes.insert(bytes.end(), p, p + 4);
    p = reinterpret_cast<const char*>(&huge);
    bytes.insert(bytes.end(), p, p + 8);
    EXPECT_FALSE(LoadCheckpointBytes(bytes).ok());
  }
  // Chunk level: a correctly framed and checksummed header chunk whose
  // payload declares a terabyte-long algorithm-name string.
  {
    const uint32_t tag = 1, version = 1;
    std::string payload;
    const uint64_t name_len = 1ULL << 40;
    payload.append(reinterpret_cast<const char*>(&name_len), 8);
    payload.append("x");  // Far fewer bytes than declared.
    const uint64_t len = payload.size();
    uint64_t sum = FnvHashBytes(&tag, 4);
    sum = FnvHashBytes(&version, 4, sum);
    sum = FnvHashBytes(&len, 8, sum);
    sum = FnvHashBytes(payload.data(), payload.size(), sum);
    std::vector<char> bytes(checkpoint_bytes_.begin(),
                            checkpoint_bytes_.begin() + 8);
    const char* p = reinterpret_cast<const char*>(&tag);
    bytes.insert(bytes.end(), p, p + 4);
    p = reinterpret_cast<const char*>(&version);
    bytes.insert(bytes.end(), p, p + 4);
    p = reinterpret_cast<const char*>(&len);
    bytes.insert(bytes.end(), p, p + 8);
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    p = reinterpret_cast<const char*>(&sum);
    bytes.insert(bytes.end(), p, p + 8);
    EXPECT_FALSE(LoadCheckpointBytes(bytes).ok());
  }
}

// Forward compatibility: a well-formed chunk with an unknown tag — as a
// future format revision would emit — must be *skipped*, and the model
// must still load and serve identically.
TEST_F(SerializationFuzzTest, UnknownChunkTagsAreSkippedNotFatal) {
  // Frame an unknown chunk by hand, checksummed exactly like the writer.
  const uint32_t tag = 0x7e57;  // No loader knows this tag.
  const uint32_t version = 9;
  const std::string payload = "opaque-future-extension-data";
  const uint64_t len = payload.size();
  uint64_t sum = FnvHashBytes(&tag, 4);
  sum = FnvHashBytes(&version, 4, sum);
  sum = FnvHashBytes(&len, 8, sum);
  sum = FnvHashBytes(payload.data(), payload.size(), sum);
  std::vector<char> chunk;
  const char* p = reinterpret_cast<const char*>(&tag);
  chunk.insert(chunk.end(), p, p + 4);
  p = reinterpret_cast<const char*>(&version);
  chunk.insert(chunk.end(), p, p + 4);
  p = reinterpret_cast<const char*>(&len);
  chunk.insert(chunk.end(), p, p + 8);
  chunk.insert(chunk.end(), payload.begin(), payload.end());
  p = reinterpret_cast<const char*>(&sum);
  chunk.insert(chunk.end(), p, p + 8);

  // Splice it in right after the header chunk (whose end we locate from
  // its length field at magic + tag + version).
  uint64_t header_len = 0;
  std::memcpy(&header_len, checkpoint_bytes_.data() + 8 + 4 + 4, 8);
  const size_t insert_at = 8 + 4 + 4 + 8 + header_len + 8;
  ASSERT_LT(insert_at, checkpoint_bytes_.size());
  std::vector<char> mutated = checkpoint_bytes_;
  mutated.insert(mutated.begin() + insert_at, chunk.begin(), chunk.end());

  auto loaded = LoadCheckpointBytes(mutated);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "HT");
  // The skipped chunk changed nothing: same recommendations as the
  // fitted original.
  const auto want = ht_->RecommendTopK(0, 5);
  const auto got = (*loaded)->RecommendTopK(0, 5);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(want->size(), got->size());
  for (size_t k = 0; k < want->size(); ++k) {
    EXPECT_EQ((*want)[k].item, (*got)[k].item);
    EXPECT_EQ((*want)[k].score, (*got)[k].score);
  }
}

// The container is strict about its tail (unlike the monolithic formats,
// which tolerate appended garbage): bytes after the end marker mean a
// concatenated or partially overwritten file and must be rejected.
TEST_F(SerializationFuzzTest, TrailingBytesAfterEndMarkerAreRejected) {
  std::vector<char> mutated = checkpoint_bytes_;
  mutated.push_back('\x7f');
  EXPECT_FALSE(LoadCheckpointBytes(mutated).ok());
  // Two whole checkpoints concatenated must not silently load the first.
  std::vector<char> doubled = checkpoint_bytes_;
  doubled.insert(doubled.end(), checkpoint_bytes_.begin(),
                 checkpoint_bytes_.end());
  EXPECT_FALSE(LoadCheckpointBytes(doubled).ok());
}

TEST_F(SerializationFuzzTest, CheckpointWrongMagicAndMissingFilesRejected) {
  // A dataset file is not a checkpoint and vice versa.
  EXPECT_FALSE(LoadModelCheckpoint(dataset_path_, *dataset_).ok());
  EXPECT_FALSE(LoadDatasetBinary(checkpoint_path_).ok());
  // Empty and missing files.
  const std::string path = TempPath("empty.ckpt");
  WriteFileBytes(path, {});
  EXPECT_FALSE(LoadModelCheckpoint(path, *dataset_).ok());
  EXPECT_FALSE(
      LoadModelCheckpoint(TempPath("no_such.ckpt"), *dataset_).ok());
  // Bumped container version in the magic.
  std::vector<char> mutated = checkpoint_bytes_;
  mutated[7] = '2';  // "LTCP0001" → "LTCP0002"
  EXPECT_FALSE(LoadCheckpointBytes(mutated).ok());
}

}  // namespace
}  // namespace longtail
