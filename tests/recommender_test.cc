#include "core/recommender.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

TEST(TopKScoredItemsTest, SortsByScoreDescending) {
  auto top = TopKScoredItems({{0, 1.0}, {1, 3.0}, {2, 2.0}}, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 2);
  EXPECT_EQ(top[2].item, 0);
}

TEST(TopKScoredItemsTest, KeepsOnlyK) {
  auto top = TopKScoredItems({{0, 1.0}, {1, 3.0}, {2, 2.0}, {3, 5.0}}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 3);
  EXPECT_EQ(top[1].item, 1);
}

TEST(TopKScoredItemsTest, TiesBrokenByItemId) {
  auto top = TopKScoredItems({{5, 1.0}, {2, 1.0}, {9, 1.0}}, 3);
  EXPECT_EQ(top[0].item, 2);
  EXPECT_EQ(top[1].item, 5);
  EXPECT_EQ(top[2].item, 9);
}

TEST(TopKScoredItemsTest, KLargerThanInput) {
  auto top = TopKScoredItems({{0, 1.0}}, 10);
  EXPECT_EQ(top.size(), 1u);
}

TEST(TopKScoredItemsTest, NegativeKIsEmpty) {
  auto top = TopKScoredItems({{0, 1.0}}, -3);
  EXPECT_TRUE(top.empty());
}

TEST(TopKScoredItemsTest, EmptyInput) {
  auto top = TopKScoredItems({}, 5);
  EXPECT_TRUE(top.empty());
}

TEST(CheckQueryUserTest, Validations) {
  EXPECT_EQ(CheckQueryUser(nullptr, 0).code(),
            StatusCode::kFailedPrecondition);
  Dataset d = testing::MakeFigure2Dataset();
  EXPECT_TRUE(CheckQueryUser(&d, 0).ok());
  EXPECT_TRUE(CheckQueryUser(&d, 4).ok());
  EXPECT_EQ(CheckQueryUser(&d, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckQueryUser(&d, -1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace longtail
