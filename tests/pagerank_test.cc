#include "baselines/pagerank.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

TEST(PageRankTest, PprVectorIsDistribution) {
  Dataset d = MakeFigure2Dataset();
  PageRankRecommender rec(/*discounted=*/false);
  ASSERT_TRUE(rec.Fit(d).ok());
  auto ppr = rec.ComputePpr(testing::kU5);
  ASSERT_TRUE(ppr.ok());
  double total = 0.0;
  for (double p : *ppr) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRankTest, RestartNodeHasLargestMass) {
  Dataset d = MakeFigure2Dataset();
  PageRankRecommender rec(/*discounted=*/false);
  ASSERT_TRUE(rec.Fit(d).ok());
  auto ppr = rec.ComputePpr(testing::kU5);
  ASSERT_TRUE(ppr.ok());
  const BipartiteGraph g = BipartiteGraph::FromDataset(d);
  size_t argmax = 0;
  for (size_t v = 1; v < ppr->size(); ++v) {
    if ((*ppr)[v] > (*ppr)[argmax]) argmax = v;
  }
  EXPECT_EQ(argmax, static_cast<size_t>(g.UserNode(testing::kU5)));
}

TEST(PageRankTest, SatisfiesFixedPointEquation) {
  // π = (1-λ) e + λ Pᵀ π.
  Dataset d = MakeFigure2Dataset();
  PageRankOptions options;
  options.damping = 0.5;
  options.tolerance = 1e-14;
  PageRankRecommender rec(false, options);
  ASSERT_TRUE(rec.Fit(d).ok());
  auto ppr = rec.ComputePpr(testing::kU1);
  ASSERT_TRUE(ppr.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double in = 0.0;
    for (size_t k = 0; k < g.Neighbors(v).size(); ++k) {
      const NodeId src = g.Neighbors(v)[k];
      const double w = g.Weights(v)[k];
      in += (*ppr)[src] * w / g.WeightedDegree(src);
    }
    const double restart = v == g.UserNode(testing::kU1) ? 1.0 : 0.0;
    EXPECT_NEAR((*ppr)[v], 0.5 * restart + 0.5 * in, 1e-9);
  }
}

TEST(PageRankTest, PprPrefersPopularDpprPrefersNiche) {
  // The paper's motivation for DPPR (Eq. 15): PPR ranks the popular M1
  // above the niche M4 for U5; DPPR flips that.
  Dataset d = MakeFigure2Dataset();
  PageRankRecommender ppr(false);
  PageRankRecommender dppr(true);
  ASSERT_TRUE(ppr.Fit(d).ok());
  ASSERT_TRUE(dppr.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM1, testing::kM4};
  auto s_ppr = ppr.ScoreItems(testing::kU5, items);
  auto s_dppr = dppr.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(s_ppr.ok());
  ASSERT_TRUE(s_dppr.ok());
  EXPECT_GT((*s_ppr)[0], (*s_ppr)[1]);    // PPR: M1 > M4.
  EXPECT_GT((*s_dppr)[1], (*s_dppr)[0]);  // DPPR: M4 > M1.
}

TEST(PageRankTest, DpprEqualsPprOverPopularity) {
  Dataset d = MakeFigure2Dataset();
  PageRankRecommender ppr(false);
  PageRankRecommender dppr(true);
  ASSERT_TRUE(ppr.Fit(d).ok());
  ASSERT_TRUE(dppr.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM1, testing::kM4, testing::kM5};
  auto s_ppr = ppr.ScoreItems(testing::kU5, items);
  auto s_dppr = dppr.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(s_ppr.ok());
  ASSERT_TRUE(s_dppr.ok());
  for (size_t k = 0; k < items.size(); ++k) {
    EXPECT_NEAR((*s_dppr)[k],
                (*s_ppr)[k] / d.ItemPopularity(items[k]), 1e-12);
  }
}

TEST(PageRankTest, RestartAtItemsMode) {
  Dataset d = MakeFigure2Dataset();
  PageRankOptions options;
  options.restart_at_items = true;
  PageRankRecommender rec(false, options);
  ASSERT_TRUE(rec.Fit(d).ok());
  auto ppr = rec.ComputePpr(testing::kU5);
  ASSERT_TRUE(ppr.ok());
  double total = 0.0;
  for (double p : *ppr) total += p;
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Restart mass concentrates on the rated items rather than the user.
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  EXPECT_GT((*ppr)[g.ItemNode(testing::kM3)], (*ppr)[g.UserNode(testing::kU1)]);
}

TEST(PageRankTest, RestartAtItemsColdStartFails) {
  auto d = Dataset::Create(2, 1, {{0, 0, 5.0f}});
  ASSERT_TRUE(d.ok());
  PageRankOptions options;
  options.restart_at_items = true;
  PageRankRecommender rec(false, options);
  ASSERT_TRUE(rec.Fit(*d).ok());
  EXPECT_FALSE(rec.ComputePpr(1).ok());
}

TEST(PageRankTest, InvalidDampingRejected) {
  Dataset d = MakeFigure2Dataset();
  PageRankOptions options;
  options.damping = 1.5;
  PageRankRecommender rec(false, options);
  EXPECT_FALSE(rec.Fit(d).ok());
}

TEST(PageRankTest, TopKExcludesRatedAndUnreachable) {
  auto d = Dataset::Create(2, 3, {{0, 0, 5.0f}, {0, 1, 3.0f}, {1, 2, 4.0f}});
  ASSERT_TRUE(d.ok());
  PageRankRecommender rec(false);
  ASSERT_TRUE(rec.Fit(*d).ok());
  auto top = rec.RecommendTopK(0, 3);
  ASSERT_TRUE(top.ok());
  // Item 2 is in a different component → unreachable; items 0/1 rated.
  EXPECT_TRUE(top->empty());
}

}  // namespace
}  // namespace longtail
