// Determinism and shape tests for the Zipf sampler and the load-harness
// request stream (ISSUE 7 satellite: the bench JSON is only comparable
// across runs if a seed names one exact workload).
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "serving/load_gen.h"
#include "util/zipf.h"

namespace longtail {
namespace {

TEST(ZipfDistributionTest, MassDecreasesAndSumsToOne) {
  const ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  for (size_t k = 0; k < zipf.n(); ++k) {
    total += zipf.Mass(k);
    if (k > 0) {
      EXPECT_LT(zipf.Mass(k), zipf.Mass(k - 1)) << "rank " << k;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfDistributionTest, ZeroExponentIsUniform) {
  const ZipfDistribution zipf(64, 0.0);
  for (size_t k = 0; k < zipf.n(); ++k) {
    EXPECT_NEAR(zipf.Mass(k), 1.0 / 64.0, 1e-12);
  }
}

TEST(ZipfDistributionTest, EmpiricalFrequenciesTrackMass) {
  const ZipfDistribution zipf(100, 1.0);
  std::mt19937_64 rng(50123);
  constexpr int kSamples = 200000;
  std::vector<int> counts(zipf.n(), 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  // Head rank and aggregate head mass, each within a few percent.
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, zipf.Mass(0), 0.01);
  double top10_mass = 0.0;
  int top10_count = 0;
  for (size_t k = 0; k < 10; ++k) {
    top10_mass += zipf.Mass(k);
    top10_count += counts[k];
  }
  // For s = 1, n = 100: H(10)/H(100) ~ 0.56 — the head carries the load.
  EXPECT_GT(top10_mass, 0.5);
  EXPECT_NEAR(static_cast<double>(top10_count) / kSamples, top10_mass, 0.01);
}

TEST(ZipfDistributionTest, SingleRankAlwaysSamplesZero) {
  const ZipfDistribution zipf(1, 0.99);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

LoadGenOptions TestOptions(uint64_t seed) {
  LoadGenOptions options;
  options.num_users = 500;
  options.zipf_exponent = 0.99;
  options.top_k = 10;
  options.seed = seed;
  return options;
}

TEST(LoadGeneratorTest, SameSeedReproducesTheExactStream) {
  LoadGenerator a(TestOptions(50123));
  LoadGenerator b(TestOptions(50123));
  for (int i = 0; i < 10000; ++i) {
    const ServeRequest ra = a.Next();
    const ServeRequest rb = b.Next();
    ASSERT_EQ(ra.user, rb.user) << "request " << i;
    ASSERT_EQ(ra.top_k, rb.top_k);
    // Interleave arrival draws to pin that Next() and NextArrivalSeconds()
    // each consume exactly one draw (a change there silently desyncs
    // replays even if both streams stay individually plausible).
    ASSERT_DOUBLE_EQ(a.NextArrivalSeconds(100.0),
                     b.NextArrivalSeconds(100.0));
  }
}

TEST(LoadGeneratorTest, DifferentSeedsDiverge) {
  LoadGenerator a(TestOptions(1));
  LoadGenerator b(TestOptions(2));
  int differing = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next().user != b.Next().user) ++differing;
  }
  EXPECT_GT(differing, 500);
}

TEST(LoadGeneratorTest, HotRanksDominateTraffic) {
  LoadGenerator gen(TestOptions(50123));
  constexpr int kRequests = 100000;
  std::map<UserId, int> counts;
  for (int i = 0; i < kRequests; ++i) ++counts[gen.Next().user];
  // The hottest rank beats the coldest by a wide margin...
  const int hottest = counts[gen.UserForRank(0)];
  const int coldest = counts[gen.UserForRank(gen.options().num_users - 1)];
  EXPECT_GT(hottest, 50 * std::max(1, coldest));
  // ...and the top decile of ranks carries most of the traffic.
  int head = 0;
  for (size_t rank = 0; rank < gen.options().num_users / 10; ++rank) {
    head += counts[gen.UserForRank(rank)];
  }
  EXPECT_GT(static_cast<double>(head) / kRequests, 0.5);
}

TEST(LoadGeneratorTest, ArrivalGapsAreExponentialAtTheRequestedRate) {
  LoadGenerator gen(TestOptions(50123));
  constexpr double kRate = 200.0;
  constexpr int kGaps = 50000;
  double sum = 0.0;
  for (int i = 0; i < kGaps; ++i) {
    const double gap = gen.NextArrivalSeconds(kRate);
    ASSERT_GE(gap, 0.0);
    sum += gap;
  }
  EXPECT_NEAR(sum / kGaps, 1.0 / kRate, 0.05 / kRate);
}

}  // namespace
}  // namespace longtail
