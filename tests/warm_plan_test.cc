// Zero-copy warm path: immutable shared WalkPlans built once at cache
// admission. Locks down the PR's three contracts:
//  1. Sharing — N kernels adopting ONE admission-built plan concurrently
//     (private scratch each) sweep bit-identically to a kernel that built
//     its own plan from the same inputs, with and without a layout.
//  2. Zero copies — a warm (cache-hit) query performs zero BipartiteGraph
//     copies and zero transition builds: adoption is a shared_ptr store.
//     The counter test fails on the old deep-copy AdoptSubgraph hit path.
//  3. Payload completeness — the cache admits subgraph + layout + plan +
//     node index together; every adopter shares the same plan object, the
//     payload node index answers global→local exactly like a fresh
//     extraction, and the plan's footprint shows up in the cache stats.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/hitting_time.h"
#include "data/generator.h"
#include "graph/markov.h"
#include "graph/subgraph.h"
#include "graph/subgraph_cache.h"
#include "graph/walk_kernel.h"
#include "graph/walk_layout.h"

namespace longtail {
namespace {

/// Random bipartite graph with `edge_prob` density (same recipe as
/// walk_kernel_test.cc, so plan decisions are exercised on familiar
/// shapes).
BipartiteGraph RandomGraph(int32_t num_users, int32_t num_items,
                           double edge_prob, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> rating(1, 5);
  std::vector<std::vector<std::pair<NodeId, double>>> adj(num_users +
                                                          num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    for (int32_t i = 0; i < num_items; ++i) {
      if (coin(rng) >= edge_prob) continue;
      const double w = static_cast<double>(rating(rng));
      adj[u].push_back({num_users + i, w});
      adj[num_users + i].push_back({u, w});
    }
  }
  return BipartiteGraph::FromAdjacency(num_users, num_items, adj);
}

std::vector<bool> RandomAbsorbing(int32_t n, double prob, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<bool> absorbing(n, false);
  for (int32_t v = 0; v < n; ++v) absorbing[v] = coin(rng) < prob;
  return absorbing;
}

std::vector<double> RandomCosts(int32_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cost(0.0, 3.0);
  std::vector<double> costs(n);
  for (int32_t v = 0; v < n; ++v) costs[v] = cost(rng);
  return costs;
}

/// Sweeps `tau` ranking iterations against an adopted shared plan.
std::vector<double> SweepAdopted(const std::shared_ptr<const WalkPlan>& plan,
                                 const std::vector<bool>& absorbing,
                                 const std::vector<double>& costs, int tau) {
  WalkKernel kernel;
  kernel.AdoptPlan(plan);
  kernel.CompileAbsorbingSweep(absorbing, costs);
  std::vector<double> value;
  kernel.SweepTruncatedItemValues(tau, &value);
  return value;
}

// One plan, eight concurrently sweeping kernels, bit-identical to a
// private BuildTransitions — with and without an adopted layout.
TEST(WarmPlanTest, SharedPlanConcurrentSweepsMatchPrivateBuildBitExactly) {
  const BipartiteGraph g = RandomGraph(160, 140, 0.06, 77);
  const int32_t n = g.num_nodes();
  const std::vector<bool> absorbing = RandomAbsorbing(n, 0.2, 78);
  const std::vector<double> costs = RandomCosts(n, 79);
  constexpr int kTau = 15;

  for (const bool with_layout : {false, true}) {
    std::shared_ptr<const WalkLayout> layout;
    if (with_layout) {
      auto built = std::make_shared<WalkLayout>();
      BuildWalkLayout(g, /*with_row_prob=*/true, built.get());
      layout = std::move(built);
    }
    // Cold path: a kernel that builds its own plan.
    WalkKernel cold;
    cold.BuildTransitions(g, WalkNormalization::kRowStochastic, layout);
    cold.CompileAbsorbingSweep(absorbing, costs);
    std::vector<double> expected;
    cold.SweepTruncatedItemValues(kTau, &expected);

    // Warm path: one admission-style plan shared across eight threads.
    auto plan = std::make_shared<WalkPlan>();
    plan->Build(g, WalkNormalization::kRowStochastic, layout);
    ASSERT_TRUE(plan->built());
    EXPECT_STREQ(cold.sweep_strategy(), plan->sweep_strategy());
    EXPECT_EQ(cold.reordered(), plan->reordered());
    EXPECT_GT(plan->OwnedBytes(), 0u);

    std::vector<std::vector<double>> results(8);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t) {
      threads.emplace_back([&, t] {
        results[t] = SweepAdopted(plan, absorbing, costs, kTau);
      });
    }
    for (auto& th : threads) th.join();
    for (size_t t = 0; t < results.size(); ++t) {
      ASSERT_EQ(expected.size(), results[t].size());
      for (size_t v = 0; v < expected.size(); ++v) {
        // Bit-identical, not approximately equal: adoption must replay
        // the exact cold-path arithmetic.
        EXPECT_EQ(expected[v], results[t][v])
            << "layout=" << with_layout << " thread " << t << " node " << v;
      }
    }
  }
}

// The adopted-plan sweep stays within the kernel's documented tolerance of
// the retained reference loop (the same contract walk_kernel_test.cc pins
// for the cold path).
TEST(WarmPlanTest, AdoptedPlanAgreesWithReferenceLoop) {
  const BipartiteGraph g = RandomGraph(90, 70, 0.08, 11);
  const int32_t n = g.num_nodes();
  const std::vector<bool> absorbing = RandomAbsorbing(n, 0.25, 12);
  const std::vector<double> costs = RandomCosts(n, 13);
  constexpr int kTau = 12;

  std::vector<double> ref, ref_scratch;
  AbsorbingValueTruncatedReference(g, absorbing, costs, kTau, &ref,
                                   &ref_scratch);
  auto plan = std::make_shared<WalkPlan>();
  plan->Build(g, WalkNormalization::kRowStochastic);
  WalkKernel kernel;
  kernel.AdoptPlan(plan);
  kernel.CompileAbsorbingSweep(absorbing, costs);
  std::vector<double> value, scratch;
  kernel.SweepTruncated(kTau, &value, &scratch);
  ASSERT_EQ(ref.size(), value.size());
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(ref[v], value[v],
                1e-12 * std::max(1.0, std::abs(ref[v])))
        << "node " << v;
  }
}

class WarmPathCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 120;
    spec.num_items = 90;
    spec.mean_user_degree = 12;
    spec.min_user_degree = 3;
    spec.num_genres = 5;
    spec.seed = 20128;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static Dataset* data_;
};

Dataset* WarmPathCacheTest::data_ = nullptr;

// The PR's headline regression test: a warm query batch performs ZERO
// BipartiteGraph copies. The cold pass pays admission copies (the counter
// moving there proves it counts); the warm pass must not move it at all.
// This test fails on the pre-plan hit path, whose deep-copy AdoptSubgraph
// copied the payload's induced graph into the workspace on every hit.
TEST_F(WarmPathCacheTest, WarmQueryPerformsZeroGraphCopies) {
  HittingTimeRecommender ht;
  ASSERT_TRUE(ht.Fit(*data_).ok());
  const std::vector<ItemId> candidates = {0, 2, 5, 9};
  std::vector<UserQuery> queries;
  for (UserId u = 0; u < 30; ++u) {
    UserQuery q;
    q.user = u;
    q.top_k = 10;
    q.score_items = candidates;
    queries.push_back(q);
  }
  SubgraphCache cache;
  BatchOptions options;
  options.num_threads = 4;
  options.subgraph_cache = &cache;

  const uint64_t before_cold = BipartiteGraph::CopyCountForTesting();
  const auto cold = ht.QueryBatch(queries, options);
  const uint64_t after_cold = BipartiteGraph::CopyCountForTesting();
  // Admission detaches a payload copy per inserted subgraph, so the cold
  // pass must move the counter — otherwise this test is vacuous.
  ASSERT_GT(after_cold, before_cold);

  const auto warm = ht.QueryBatch(queries, options);
  const uint64_t after_warm = BipartiteGraph::CopyCountForTesting();
  EXPECT_EQ(after_cold, after_warm)
      << "a cache-hit query copied a BipartiteGraph; the warm path must "
         "adopt the shared payload without any O(E)/O(V) work";
  EXPECT_GE(cache.Stats().hits, queries.size());

  // Zero-copy must not mean approximately-equal: warm == cold bit for bit.
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    ASSERT_EQ(cold[i].top_k.size(), warm[i].top_k.size()) << "query " << i;
    for (size_t k = 0; k < cold[i].top_k.size(); ++k) {
      EXPECT_EQ(cold[i].top_k[k].item, warm[i].top_k[k].item);
      EXPECT_EQ(cold[i].top_k[k].score, warm[i].top_k[k].score);
    }
    EXPECT_EQ(cold[i].scores, warm[i].scores) << "query " << i;
  }
}

// Admission publishes one plan; every adopter shares that exact object,
// and its footprint is visible in the cache stats.
TEST_F(WarmPathCacheTest, AdoptersShareOneAdmissionBuiltPlan) {
  const BipartiteGraph g = BipartiteGraph::FromDataset(*data_, true);
  const std::vector<NodeId> seeds = {g.UserNode(3)};
  SubgraphOptions options;
  options.max_items = 50;
  SubgraphCache cache;

  WalkWorkspace leader;
  cache.GetOrExtract(g, seeds, options, &leader);
  ASSERT_NE(leader.sub().plan, nullptr);
  ASSERT_TRUE(leader.sub().plan->built());
  ASSERT_TRUE(leader.sub().node_index.built());

  WalkWorkspace adopter;
  cache.GetOrExtract(g, seeds, options, &adopter);
  // Same payload, same plan object — not an equal copy.
  EXPECT_EQ(&leader.sub(), &adopter.sub());
  EXPECT_EQ(leader.sub().plan.get(), adopter.sub().plan.get());

  const SubgraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GT(stats.plan_resident_bytes, 0u);
  EXPECT_LT(stats.plan_resident_bytes, stats.resident_bytes);
}

// The payload's compact node index answers global→local exactly like a
// fresh extraction's lookup tables, for every global user and item.
TEST_F(WarmPathCacheTest, PayloadNodeIndexMatchesFreshExtraction) {
  const BipartiteGraph g = BipartiteGraph::FromDataset(*data_, true);
  const std::vector<NodeId> seeds = {g.UserNode(7)};
  SubgraphOptions options;
  options.max_items = 40;

  const Subgraph fresh = ExtractSubgraph(g, seeds, options);
  SubgraphCache cache;
  WalkWorkspace ws;
  cache.GetOrExtract(g, seeds, options, &ws);  // cold: insert
  WalkWorkspace warm;
  cache.GetOrExtract(g, seeds, options, &warm);  // hit: adopt payload
  const Subgraph& adopted = warm.sub();
  ASSERT_TRUE(adopted.node_index.built());
  ASSERT_EQ(fresh.users, adopted.users);
  ASSERT_EQ(fresh.items, adopted.items);
  for (UserId u = 0; u < data_->num_users(); ++u) {
    EXPECT_EQ(fresh.LocalUserNode(u), adopted.LocalUserNode(u))
        << "user " << u;
  }
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    EXPECT_EQ(fresh.LocalItemNode(i), adopted.LocalItemNode(i))
        << "item " << i;
  }
}

}  // namespace
}  // namespace longtail
