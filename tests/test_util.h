// Shared fixtures for longtail tests: the paper's Figure 2 example and
// small closed-form graphs.
#ifndef LONGTAIL_TESTS_TEST_UTIL_H_
#define LONGTAIL_TESTS_TEST_UTIL_H_

#include <vector>

#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "util/logging.h"

namespace longtail {
namespace testing {

// User/item indices of the paper's Figure 2 rating table.
inline constexpr UserId kU1 = 0, kU2 = 1, kU3 = 2, kU4 = 3, kU5 = 4;
inline constexpr ItemId kM1 = 0, kM2 = 1, kM3 = 2, kM4 = 3, kM5 = 4, kM6 = 5;

/// The exact 5-user / 6-movie rating matrix of Figure 2:
///        M1 M2 M3 M4 M5 M6
///   U1    5  3  -  -  3  5
///   U2    5  4  5  -  4  5
///   U3    4  5  4  -  -  -
///   U4    -  -  5  5  -  -
///   U5    -  4  5  -  -  -
inline Dataset MakeFigure2Dataset() {
  std::vector<RatingEntry> ratings = {
      {kU1, kM1, 5}, {kU1, kM2, 3}, {kU1, kM5, 3}, {kU1, kM6, 5},
      {kU2, kM1, 5}, {kU2, kM2, 4}, {kU2, kM3, 5}, {kU2, kM5, 4},
      {kU2, kM6, 5}, {kU3, kM1, 4}, {kU3, kM2, 5}, {kU3, kM3, 4},
      {kU4, kM3, 5}, {kU4, kM4, 5}, {kU5, kM2, 4}, {kU5, kM3, 5}};
  auto result = Dataset::Create(5, 6, std::move(ratings));
  LT_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A star: one user connected to `num_items` items with unit weights.
inline Dataset MakeStarDataset(int num_items) {
  std::vector<RatingEntry> ratings;
  for (int i = 0; i < num_items; ++i) {
    ratings.push_back({0, i, 1.0f});
  }
  auto result = Dataset::Create(1, num_items, std::move(ratings));
  LT_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A path u0 — i0 — u1 — i1 — ... alternating users and items,
/// `num_users` users and `num_users - 1` items, unit weights.
inline Dataset MakePathDataset(int num_users) {
  std::vector<RatingEntry> ratings;
  for (int u = 0; u + 1 < num_users; ++u) {
    ratings.push_back({u, u, 1.0f});      // u_k — i_k
    ratings.push_back({u + 1, u, 1.0f});  // i_k — u_{k+1}
  }
  auto result = Dataset::Create(num_users, num_users - 1, std::move(ratings));
  LT_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace testing
}  // namespace longtail

#endif  // LONGTAIL_TESTS_TEST_UTIL_H_
