#include "baselines/item_knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

TEST(ItemKnnTest, CosineSimilarityManualCheck) {
  // Items M5 and M6 are co-rated by U1 (3,5) and U2 (4,5).
  // dot = 3·5 + 4·5 = 35; |M5| = √(9+16) = 5; |M6| = √50.
  Dataset d = MakeFigure2Dataset();
  ItemKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  const auto& nbrs = rec.Neighbors(testing::kM5);
  double sim_to_m6 = -1.0;
  for (const auto& n : nbrs) {
    if (n.item == testing::kM6) sim_to_m6 = n.score;
  }
  EXPECT_NEAR(sim_to_m6, 35.0 / (5.0 * std::sqrt(50.0)), 1e-9);
}

TEST(ItemKnnTest, NeighborsSortedDescending) {
  Dataset d = MakeFigure2Dataset();
  ItemKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  for (ItemId i = 0; i < d.num_items(); ++i) {
    const auto& nbrs = rec.Neighbors(i);
    for (size_t k = 1; k < nbrs.size(); ++k) {
      EXPECT_GE(nbrs[k - 1].score, nbrs[k].score);
    }
  }
}

TEST(ItemKnnTest, NeighborCountCapped) {
  Dataset d = MakeFigure2Dataset();
  ItemKnnOptions options;
  options.num_neighbors = 2;
  ItemKnnRecommender rec(options);
  ASSERT_TRUE(rec.Fit(d).ok());
  for (ItemId i = 0; i < d.num_items(); ++i) {
    EXPECT_LE(rec.Neighbors(i).size(), 2u);
  }
}

TEST(ItemKnnTest, SimilaritySymmetric) {
  Dataset d = MakeFigure2Dataset();
  ItemKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  // sim(M2, M3) should appear identically in both neighbor lists (both
  // items have < num_neighbors co-rated partners here).
  auto find = [&](ItemId from, ItemId to) {
    for (const auto& n : rec.Neighbors(from)) {
      if (n.item == to) return n.score;
    }
    return -1.0;
  };
  const double ab = find(testing::kM2, testing::kM3);
  const double ba = find(testing::kM3, testing::kM2);
  ASSERT_GT(ab, 0.0);
  EXPECT_NEAR(ab, ba, 1e-12);
}

TEST(ItemKnnTest, RecommendsTasteNeighborItems) {
  Dataset d = MakeFigure2Dataset();
  ItemKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  ASSERT_GE(top->size(), 1u);
  for (const ScoredItem& si : *top) {
    EXPECT_FALSE(d.HasRating(testing::kU5, si.item));
    EXPECT_GT(si.score, 0.0);
  }
}

TEST(ItemKnnTest, PowerUserSkipped) {
  // With max_user_degree = 1 every user is skipped: no similarities.
  Dataset d = MakeFigure2Dataset();
  ItemKnnOptions options;
  options.max_user_degree = 1;
  ItemKnnRecommender rec(options);
  ASSERT_TRUE(rec.Fit(d).ok());
  for (ItemId i = 0; i < d.num_items(); ++i) {
    EXPECT_TRUE(rec.Neighbors(i).empty());
  }
}

TEST(ItemKnnTest, InvalidOptionsRejected) {
  Dataset d = MakeFigure2Dataset();
  ItemKnnOptions options;
  options.num_neighbors = 0;
  ItemKnnRecommender rec(options);
  EXPECT_FALSE(rec.Fit(d).ok());
}

TEST(ItemKnnTest, ScoreItemsMatchesAccumulation) {
  Dataset d = MakeFigure2Dataset();
  ItemKnnRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_GE(top->size(), 1u);
  std::vector<ItemId> items = {(*top)[0].item};
  auto scores = rec.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR((*scores)[0], (*top)[0].score, 1e-12);
}

}  // namespace
}  // namespace longtail
