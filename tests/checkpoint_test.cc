// Model checkpointing contract, for every one of the eleven recommenders:
// Load(Save(fitted)) into a *fresh, default-constructed* object — obtained
// from the ModelRegistry by name, so non-default constructor options must
// ride in the checkpoint — yields bit-identical RecommendTopK / ScoreItems
// / QueryBatch output versus the fitted instance, at 1 and 8 threads.
// Plus the registry API itself and the load-time failure modes (wrong
// algorithm, wrong dataset shape, double-load, fit-after-load).
#include "serving/model_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/item_knn.h"
#include "baselines/katz.h"
#include "baselines/lda_recommender.h"
#include "baselines/pagerank.h"
#include "baselines/popularity.h"
#include "baselines/pure_svd.h"
#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "data/serialization.h"

namespace longtail {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Non-default options everywhere: the registry reconstructs each
/// algorithm with *default* constructor arguments, so any parity below
/// proves the checkpoint carries the configuration, not just the tables.
GraphWalkOptions TestWalk() {
  GraphWalkOptions walk;
  walk.iterations = 7;
  walk.max_subgraph_items = 60;
  return walk;
}

LdaOptions TestLda() {
  LdaOptions lda;
  lda.num_topics = 5;
  lda.iterations = 15;
  lda.seed = 99;
  return lda;
}

struct AlgoCase {
  const char* name;
  std::function<std::unique_ptr<Recommender>()> make;
};

const std::vector<AlgoCase>& AllAlgorithms() {
  static const std::vector<AlgoCase>* cases = new std::vector<AlgoCase>{
      {"HT",
       [] { return std::make_unique<HittingTimeRecommender>(TestWalk()); }},
      {"AT",
       [] { return std::make_unique<AbsorbingTimeRecommender>(TestWalk()); }},
      {"AC1",
       [] {
         AbsorbingCostOptions options;
         options.walk = TestWalk();
         return std::make_unique<AbsorbingCostRecommender>(
             EntropySource::kItemBased, options);
       }},
      {"AC2",
       [] {
         AbsorbingCostOptions options;
         options.walk = TestWalk();
         options.lda = TestLda();
         return std::make_unique<AbsorbingCostRecommender>(
             EntropySource::kTopicBased, options);
       }},
      {"PPR",
       [] {
         PageRankOptions options;
         options.damping = 0.4;
         options.max_iterations = 60;
         return std::make_unique<PageRankRecommender>(/*discounted=*/false,
                                                      options);
       }},
      {"DPPR",
       [] {
         PageRankOptions options;
         options.damping = 0.6;
         return std::make_unique<PageRankRecommender>(/*discounted=*/true,
                                                      options);
       }},
      {"PureSVD",
       [] {
         PureSvdOptions options;
         options.num_factors = 8;
         return std::make_unique<PureSvdRecommender>(options);
       }},
      {"LDA", [] { return std::make_unique<LdaRecommender>(TestLda()); }},
      {"ItemKNN",
       [] {
         ItemKnnOptions options;
         options.num_neighbors = 4;
         return std::make_unique<ItemKnnRecommender>(options);
       }},
      {"Katz",
       [] {
         KatzOptions options;
         options.beta = 0.02;
         options.max_path_length = 4;
         return std::make_unique<KatzRecommender>(options);
       }},
      {"MostPopular", [] { return std::make_unique<PopularityRecommender>(); }},
  };
  return *cases;
}

class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.name = "checkpoint";
    spec.num_users = 120;
    spec.num_items = 90;
    spec.mean_user_degree = 10;
    spec.min_user_degree = 3;
    spec.num_genres = 5;
    spec.seed = 77;
    auto generated = GenerateSyntheticData(spec);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    data_ = new Dataset(std::move(generated->dataset));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// A batch exercising both query halves for every user: top-k list plus
  /// scores for a fixed candidate slate.
  static std::vector<UserQuery> MakeQueries(
      const std::vector<ItemId>& candidates) {
    std::vector<UserQuery> queries(data_->num_users());
    for (UserId u = 0; u < data_->num_users(); ++u) {
      queries[u].user = u;
      queries[u].top_k = 10;
      queries[u].score_items = candidates;
    }
    return queries;
  }

  static void ExpectBitIdentical(const std::vector<UserQueryResult>& want,
                                 const std::vector<UserQueryResult>& got,
                                 const std::string& label) {
    ASSERT_EQ(want.size(), got.size()) << label;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i].status.ok(), got[i].status.ok())
          << label << " user " << i << ": " << want[i].status.ToString()
          << " vs " << got[i].status.ToString();
      ASSERT_EQ(want[i].top_k.size(), got[i].top_k.size())
          << label << " user " << i;
      for (size_t k = 0; k < want[i].top_k.size(); ++k) {
        EXPECT_EQ(want[i].top_k[k].item, got[i].top_k[k].item)
            << label << " user " << i << " rank " << k;
        // Bitwise: == on doubles, no tolerance.
        EXPECT_EQ(want[i].top_k[k].score, got[i].top_k[k].score)
            << label << " user " << i << " rank " << k;
      }
      ASSERT_EQ(want[i].scores.size(), got[i].scores.size())
          << label << " user " << i;
      for (size_t k = 0; k < want[i].scores.size(); ++k) {
        EXPECT_EQ(want[i].scores[k], got[i].scores[k])
            << label << " user " << i << " candidate " << k;
      }
    }
  }

  static Dataset* data_;
};

Dataset* CheckpointTest::data_ = nullptr;

TEST_F(CheckpointTest, EveryRecommenderSurvivesSaveLoadBitIdentically) {
  const std::vector<ItemId> candidates = {0,  1,  5,  12, 23, 34,
                                          45, 56, 67, 78, 89};
  const std::vector<UserQuery> queries = MakeQueries(candidates);
  for (const AlgoCase& algo : AllAlgorithms()) {
    SCOPED_TRACE(algo.name);
    std::unique_ptr<Recommender> fitted = algo.make();
    ASSERT_EQ(fitted->name(), algo.name);
    ASSERT_TRUE(fitted->Fit(*data_).ok());

    const std::string path = TempPath(std::string(algo.name) + ".ckpt");
    ASSERT_TRUE(SaveModelCheckpoint(*fitted, path).ok());

    // Registry cold start: fresh object, default options, no Fit.
    auto loaded = LoadModelCheckpoint(path, *data_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ((*loaded)->name(), algo.name);
    EXPECT_EQ((*loaded)->dataset(), data_);

    BatchOptions sequential;
    sequential.num_threads = 1;
    const auto want = fitted->QueryBatch(queries, sequential);
    for (size_t threads : {1u, 8u}) {
      BatchOptions options;
      options.num_threads = threads;
      const auto got = (*loaded)->QueryBatch(queries, options);
      ExpectBitIdentical(
          want, got,
          std::string(algo.name) + "@" + std::to_string(threads) + "t");
    }

    // Single-user paths agree too.
    const auto want_top = fitted->RecommendTopK(0, 5);
    const auto got_top = (*loaded)->RecommendTopK(0, 5);
    ASSERT_EQ(want_top.ok(), got_top.ok());
    if (want_top.ok()) {
      ASSERT_EQ(want_top->size(), got_top->size());
      for (size_t k = 0; k < want_top->size(); ++k) {
        EXPECT_EQ((*want_top)[k].item, (*got_top)[k].item);
        EXPECT_EQ((*want_top)[k].score, (*got_top)[k].score);
      }
    }
    std::remove(path.c_str());
  }
}

TEST_F(CheckpointTest, RegistryKnowsAllElevenBuiltins) {
  const std::vector<std::string> names =
      ModelRegistry::Global().RegisteredNames();
  for (const char* want :
       {"HT", "AT", "AC1", "AC2", "PPR", "DPPR", "PureSVD", "LDA", "ItemKNN",
        "Katz", "MostPopular"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
    auto rec = ModelRegistry::Global().Create(want);
    ASSERT_TRUE(rec.ok()) << want;
    EXPECT_EQ((*rec)->name(), want);
    EXPECT_EQ((*rec)->dataset(), nullptr);
  }
  EXPECT_GE(names.size(), 11u);
}

TEST_F(CheckpointTest, UnknownAlgorithmIsRejected) {
  EXPECT_FALSE(ModelRegistry::Global().Create("NoSuchAlgorithm").ok());
}

TEST_F(CheckpointTest, HeaderNameAndShapeAreEnforced) {
  HittingTimeRecommender ht(TestWalk());
  ASSERT_TRUE(ht.Fit(*data_).ok());
  const std::string path = TempPath("header_checks.ckpt");
  ASSERT_TRUE(SaveModelCheckpoint(ht, path).ok());

  EXPECT_EQ(ReadCheckpointAlgorithm(path).value_or(""), "HT");

  // Loading an HT checkpoint into an AT instance must fail on the header.
  AbsorbingTimeRecommender at;
  EXPECT_FALSE(LoadModelCheckpointInto(path, *data_, &at).ok());

  // A dataset of a different shape must be rejected before any chunk
  // parsing trusts it.
  SyntheticSpec other;
  other.num_users = 30;
  other.num_items = 20;
  other.mean_user_degree = 5;
  other.min_user_degree = 2;
  other.seed = 5;
  auto small = GenerateSyntheticData(other);
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(LoadModelCheckpoint(path, small->dataset).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LifecycleGuards) {
  KatzRecommender fitted;
  ASSERT_TRUE(fitted.Fit(*data_).ok());
  const std::string path = TempPath("lifecycle.ckpt");
  ASSERT_TRUE(SaveModelCheckpoint(fitted, path).ok());

  // LoadModel on an already-fitted instance fails.
  EXPECT_FALSE(LoadModelCheckpointInto(path, *data_, &fitted).ok());

  // Fit after a successful load fails (the model is already bound).
  auto loaded = LoadModelCheckpoint(path, *data_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)->Fit(*data_).ok());

  // Saving an unfitted recommender fails.
  KatzRecommender unfitted;
  EXPECT_FALSE(
      SaveModelCheckpoint(unfitted, TempPath("unfitted.ckpt")).ok());
  std::remove(path.c_str());
}

// A load that fails *after* its chunks parsed (subclass validation: here
// an AC1 checkpoint missing its entropy chunk) must leave the object
// unfitted with the caller's options intact, so the harness's fallback
// Fit() still works — a half-restored load must never poison the refit.
TEST_F(CheckpointTest, FailedLoadLeavesObjectFittable) {
  // Hand-build an "AC1" checkpoint holding only the shared graph-walker
  // chunks (what an interrupted save could leave): HT's SaveModel writes
  // exactly those two.
  HittingTimeRecommender ht(TestWalk());
  ASSERT_TRUE(ht.Fit(*data_).ok());
  const std::string path = TempPath("incomplete_ac1.ckpt");
  {
    CheckpointWriter writer(path);
    ASSERT_TRUE(writer.ok());
    ChunkWriter header;
    header.String("AC1");
    header.Scalar<int32_t>(data_->num_users());
    header.Scalar<int32_t>(data_->num_items());
    header.Scalar<int64_t>(data_->num_ratings());
    ASSERT_TRUE(writer
                    .WriteChunk(kChunkModelHeader, kCheckpointChunkVersion,
                                header)
                    .ok());
    ASSERT_TRUE(ht.SaveModel(writer).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  AbsorbingCostOptions options;
  options.walk.iterations = 33;  // Distinct from TestWalk()'s 7.
  AbsorbingCostRecommender ac1(EntropySource::kItemBased, options);
  EXPECT_FALSE(LoadModelCheckpointInto(path, *data_, &ac1).ok());
  EXPECT_EQ(ac1.dataset(), nullptr);
  // The fallback refit works and trains under the caller's options, not
  // the checkpoint's.
  ASSERT_TRUE(ac1.Fit(*data_).ok());
  EXPECT_EQ(ac1.options().iterations, 33);
  std::remove(path.c_str());
}

// The AC2 checkpoint carries the LDA tables; the restored model must hand
// them onward exactly as the fitted one does (the harness adopts AC2's
// model for the LDA baseline).
TEST_F(CheckpointTest, Ac2CheckpointCarriesItsLdaModel) {
  AbsorbingCostOptions options;
  options.walk = TestWalk();
  options.lda = TestLda();
  AbsorbingCostRecommender ac2(EntropySource::kTopicBased, options);
  ASSERT_TRUE(ac2.Fit(*data_).ok());
  const std::string path = TempPath("ac2_lda.ckpt");
  ASSERT_TRUE(SaveModelCheckpoint(ac2, path).ok());

  auto loaded = LoadModelCheckpoint(path, *data_);
  ASSERT_TRUE(loaded.ok());
  auto* loaded_ac2 = dynamic_cast<AbsorbingCostRecommender*>(loaded->get());
  ASSERT_NE(loaded_ac2, nullptr);
  ASSERT_TRUE(loaded_ac2->lda_model().has_value());
  EXPECT_EQ(loaded_ac2->lda_model()->theta().data(),
            ac2.lda_model()->theta().data());
  EXPECT_EQ(loaded_ac2->lda_model()->phi().data(),
            ac2.lda_model()->phi().data());
  EXPECT_EQ(loaded_ac2->user_entropy(), ac2.user_entropy());
  EXPECT_EQ(loaded_ac2->resolved_user_jump_cost(),
            ac2.resolved_user_jump_cost());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace longtail
